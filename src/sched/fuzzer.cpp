#include "sched/fuzzer.hpp"

#include <algorithm>
#include <cstdio>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "sched/explore_common.hpp"
#include "sched/reduce.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"

namespace ff::sched {

namespace {

using detail::Fingerprint;
using detail::FingerprintHash;

/// Canonical ordering of choices: lower pid first (the adversary's
/// 0xFFFFFFFF pseudo-pid naturally sorts last), clean before faulty
/// before crashing, lower fault variant first.  The shrinker
/// canonicalizes towards the minimum of this order.
[[nodiscard]] std::uint64_t choice_key(const Choice& c) noexcept {
  return (static_cast<std::uint64_t>(c.pid) << 34) |
         (static_cast<std::uint64_t>(c.crash) << 33) |
         (static_cast<std::uint64_t>(c.fault) << 32) | c.fault_variant;
}

/// Unguided pick, identical in spirit to random_walk: prefer a fault or
/// crash choice with probability `fault_bias`, uniform within the pool.
/// With crash_budget 0 no crash choice ever exists, so the pools — and
/// every RNG draw — are bit-identical to the crash-unaware fuzzer.
[[nodiscard]] Choice biased_pick(const std::vector<Choice>& choices,
                                 util::Xoshiro256& rng, double fault_bias) {
  std::vector<Choice> faulty;
  std::vector<Choice> clean;
  for (const Choice& c : choices) {
    (c.fault || c.crash ? faulty : clean).push_back(c);
  }
  const std::vector<Choice>& pool =
      (!faulty.empty() && rng.chance(fault_bias)) ? faulty : clean;
  const std::vector<Choice>& chosen = pool.empty() ? choices : pool;
  return chosen[rng.below(chosen.size())];
}

/// PCT state: one priority per process plus one for the adversary's
/// corruption steps (slot `n`).  Higher value = scheduled first.
struct PctPriorities {
  std::vector<std::int64_t> priority;

  [[nodiscard]] std::size_t slot(objects::ProcessId pid) const noexcept {
    return pid == kAdversaryPid ? priority.size() - 1 : pid;
  }

  static PctPriorities random(std::uint32_t processes,
                              util::Xoshiro256& rng) {
    PctPriorities p;
    p.priority.resize(processes + 1);
    for (std::size_t i = 0; i < p.priority.size(); ++i) {
      p.priority[i] = static_cast<std::int64_t>(i) + 1;
    }
    for (std::size_t i = p.priority.size(); i > 1; --i) {
      std::swap(p.priority[i - 1], p.priority[rng.below(i)]);
    }
    return p;
  }

  /// Demotes the slot below every other priority (a PCT change point).
  void demote(std::size_t s) {
    const std::int64_t lowest =
        *std::min_element(priority.begin(), priority.end());
    priority[s] = lowest - 1;
  }
};

[[nodiscard]] Choice pct_pick(const std::vector<Choice>& choices,
                              const PctPriorities& prio,
                              util::Xoshiro256& rng, double fault_bias) {
  std::size_t best_slot = prio.slot(choices.front().pid);
  for (const Choice& c : choices) {
    const std::size_t s = prio.slot(c.pid);
    if (prio.priority[s] > prio.priority[best_slot]) best_slot = s;
  }
  std::vector<Choice> faulty;
  std::vector<Choice> clean;
  for (const Choice& c : choices) {
    if (prio.slot(c.pid) != best_slot) continue;
    (c.fault || c.crash ? faulty : clean).push_back(c);
  }
  if (!faulty.empty() && (clean.empty() || rng.chance(fault_bias))) {
    return faulty[rng.below(faulty.size())];
  }
  return clean.empty() ? faulty[rng.below(faulty.size())] : clean.front();
}

/// Resolves a guidance choice against the currently enabled set: exact
/// match, else same (pid, fault, crash), else same pid preferring its
/// clean step.  nullopt when the process has no enabled choice at all.
[[nodiscard]] std::optional<Choice> resolve(
    const std::vector<Choice>& enabled, const Choice& want) {
  const Choice* same_pid_clean = nullptr;
  const Choice* same_pid_any = nullptr;
  for (const Choice& c : enabled) {
    if (c == want) return c;
    if (c.pid != want.pid) continue;
    if (!same_pid_any) same_pid_any = &c;
    if (!c.fault && !c.crash && !same_pid_clean) same_pid_clean = &c;
    if (c.fault == want.fault && c.crash == want.crash) return c;
  }
  if (same_pid_clean) return *same_pid_clean;
  if (same_pid_any) return *same_pid_any;
  return std::nullopt;
}

enum class Mode : std::uint8_t {
  kFresh,       ///< PCT-style priority walk
  kSplice,      ///< prefix of one corpus entry + suffix of another
  kTruncate,    ///< corpus prefix, then an unguided random tail
  kPidSwap,     ///< swap two process identities throughout
  kFaultNudge,  ///< toggle / move / revariant a fault point
};

[[nodiscard]] std::vector<Choice> make_guidance(
    Mode mode, const std::vector<std::vector<Choice>>& corpus,
    std::uint32_t processes, util::Xoshiro256& rng) {
  const auto& parent = corpus[rng.below(corpus.size())];
  switch (mode) {
    case Mode::kFresh:
      return {};
    case Mode::kSplice: {
      const auto& other = corpus[rng.below(corpus.size())];
      const std::size_t i = rng.below(parent.size() + 1);
      const std::size_t j = rng.below(other.size() + 1);
      std::vector<Choice> out(parent.begin(),
                              parent.begin() + static_cast<std::ptrdiff_t>(i));
      out.insert(out.end(), other.begin() + static_cast<std::ptrdiff_t>(j),
                 other.end());
      return out;
    }
    case Mode::kTruncate: {
      const std::size_t keep = rng.below(parent.size() + 1);
      return {parent.begin(), parent.begin() + static_cast<std::ptrdiff_t>(keep)};
    }
    case Mode::kPidSwap: {
      std::vector<Choice> out = parent;
      const auto p = static_cast<objects::ProcessId>(rng.below(processes));
      const auto q = static_cast<objects::ProcessId>(rng.below(processes));
      for (Choice& c : out) {
        if (c.pid == p) {
          c.pid = q;
        } else if (c.pid == q) {
          c.pid = p;
        }
      }
      return out;
    }
    case Mode::kFaultNudge: {
      std::vector<Choice> out = parent;
      if (out.empty()) return out;
      const std::size_t idx = rng.below(out.size());
      switch (rng.below(3)) {
        case 0:  // toggle the fault flag (and drop any crash marker)
          out[idx].fault = !out[idx].fault;
          out[idx].fault_variant = 0;
          out[idx].crash = false;
          break;
        case 1: {  // move the step one slot (shifts a fault point)
          const std::size_t other =
              idx + 1 < out.size() ? idx + 1 : (idx == 0 ? 0 : idx - 1);
          std::swap(out[idx], out[other]);
          break;
        }
        default:  // revariant: force a faulty step with a fresh variant
          out[idx].fault = true;
          out[idx].crash = false;
          out[idx].fault_variant = static_cast<std::uint32_t>(rng.below(4));
          break;
      }
      return out;
    }
  }
  return {};
}

struct ExecOutcome {
  std::vector<Choice> path;
  bool new_coverage = false;
  bool truncated_by_budget = false;
  std::optional<ViolationKind> kind;
  std::string detail;
};

/// Runs one execution: guided by `guidance` where possible, PCT-driven
/// in fresh mode, biased-random on the tail.  Coverage fingerprints are
/// recorded after every applied step; a revisited state whose repeated
/// segment contains a process step is reported as nontermination.
ExecOutcome run_exec(const SimWorld& initial,
                     const std::vector<Choice>& guidance, bool fresh,
                     const FuzzOptions& options, bool sym,
                     util::Xoshiro256& rng, runtime::BudgetMeter& meter,
                     std::unordered_set<Fingerprint, FingerprintHash>&
                         coverage) {
  ExecOutcome out;
  SimWorld world = initial;
  StateEncoder encoder;
  EncodedState enc;

  PctPriorities prio;
  std::vector<std::uint64_t> change_points;
  if (fresh) {
    prio = PctPriorities::random(world.processes(), rng);
    change_points.reserve(options.pct_change_points);
    for (std::uint32_t i = 0; i < options.pct_change_points; ++i) {
      change_points.push_back(1 + rng.below(options.max_steps_per_exec));
    }
    std::sort(change_points.begin(), change_points.end());
  }

  // Step count at which each fingerprint was first observed (0 = the
  // initial state), for exact in-execution cycle detection.  These stay
  // EXACT even under symmetry reduction: the cycle oracle's verdict
  // promises a strict revisit of an earlier state of THIS execution,
  // which classify_schedule later re-verifies by comparing raw encodes.
  std::unordered_map<Fingerprint, std::size_t, FingerprintHash> seen_at;
  encoder.encode(world, enc);
  seen_at.emplace(fingerprint_state(enc, /*canonical=*/false), 0);

  while (!world.terminal()) {
    if (out.path.size() >= options.max_steps_per_exec) return out;
    if (!meter.charge(1)) {
      out.truncated_by_budget = true;
      return out;
    }
    const auto choices = world.enabled();
    std::optional<Choice> picked;
    if (out.path.size() < guidance.size()) {
      picked = resolve(choices, guidance[out.path.size()]);
    } else if (fresh) {
      if (!change_points.empty() && out.path.size() >= change_points.front()) {
        // A PCT change point: demote whichever slot currently runs.
        prio.demote(prio.slot(pct_pick(choices, prio, rng,
                                       /*fault_bias=*/0.0).pid));
        change_points.erase(change_points.begin());
      }
      picked = pct_pick(choices, prio, rng, options.fault_bias);
    }
    const Choice choice =
        picked ? *picked : biased_pick(choices, rng, options.fault_bias);
    world.apply(choice);
    out.path.push_back(choice);

    // Novelty is judged on the canonical (orbit) fingerprint when
    // symmetry is active; the cycle oracle always uses the exact one.
    encoder.encode(world, enc);
    const Fingerprint fp = fingerprint_state(enc, /*canonical=*/false);
    const Fingerprint cov_fp = sym ? fingerprint_state(enc, true) : fp;
    if (coverage.insert(cov_fp).second) out.new_coverage = true;
    const auto [it, inserted] = seen_at.try_emplace(fp, out.path.size());
    if (!inserted) {
      bool process_steps = false;
      for (std::size_t k = it->second; k < out.path.size(); ++k) {
        if (out.path[k].pid != kAdversaryPid) {
          process_steps = true;
          break;
        }
      }
      if (process_steps) {
        out.kind = ViolationKind::kNontermination;
        out.detail = "schedule revisits the state reached after step " +
                     std::to_string(it->second) +
                     " with a process step inside the cycle";
        return out;
      }
    }
  }

  ExploreOptions eo;
  eo.killed_is_violation = options.killed_is_violation;
  out.kind = detail::check_terminal(world, eo, out.detail);
  return out;
}

[[nodiscard]] std::string hex_fingerprint(std::uint64_t a, std::uint64_t b) {
  char buf[36];
  std::snprintf(buf, sizeof(buf), "%016llx%016llx",
                static_cast<unsigned long long>(a),
                static_cast<unsigned long long>(b));
  return buf;
}

}  // namespace

FuzzResult fuzz(const SimWorld& initial, const FuzzOptions& options) {
  FuzzResult result;
  util::Xoshiro256 rng(options.seed);
  runtime::BudgetMeter meter(options.budget);

  const bool sym =
      options.symmetry_reduction && initial.processes_symmetric();
  std::unordered_set<Fingerprint, FingerprintHash> coverage;
  {
    StateEncoder encoder;
    EncodedState enc;
    encoder.encode(initial, enc);
    coverage.insert(fingerprint_state(enc, sym));
  }

  bool truncated = false;
  bool goal_met = false;
  while (true) {
    if (options.max_execs != 0 &&
        result.stats.executions >= options.max_execs) {
      goal_met = true;
      break;
    }
    if (meter.expired()) {
      truncated = true;
      break;
    }

    Mode mode = Mode::kFresh;
    if (!result.corpus.empty() && !rng.chance(options.fresh_walk_prob)) {
      mode = static_cast<Mode>(1 + rng.below(4));
    }
    const std::vector<Choice> guidance =
        make_guidance(mode, mode == Mode::kFresh
                                ? std::vector<std::vector<Choice>>{{}}
                                : result.corpus,
                      initial.processes(), rng);
    ExecOutcome exec = run_exec(initial, guidance, mode == Mode::kFresh,
                                options, sym, rng, meter, coverage);
    if (exec.truncated_by_budget) {
      // The partial execution is discarded entirely: no verdict and no
      // corpus entry may come from work the budget did not cover.
      truncated = true;
      break;
    }
    ++result.stats.executions;

    if (exec.new_coverage && result.corpus.size() < options.max_corpus) {
      result.corpus.push_back(exec.path);
    }
    if (exec.kind) {
      ++result.stats.violations_found;
      ++result.violations_by_kind[*exec.kind];
      Violation v{*exec.kind, exec.path, exec.detail};
      result.first_by_kind.try_emplace(*exec.kind, v);
      if (!result.original_violation) {
        result.original_violation = std::move(v);
        result.stats.first_violation_exec = result.stats.executions - 1;
      }
      if (options.stop_at_first_violation) break;  // early stop: incomplete
      if (!options.stop_after_kinds.empty() &&
          std::all_of(options.stop_after_kinds.begin(),
                      options.stop_after_kinds.end(),
                      [&](ViolationKind k) {
                        return result.first_by_kind.contains(k);
                      })) {
        goal_met = true;
        break;
      }
    }
  }

  result.complete = goal_met && !truncated;
  result.stats.total_steps = meter.used();
  result.stats.corpus_entries = result.corpus.size();
  result.stats.unique_states = coverage.size();

  result.coverage.reserve(coverage.size());
  for (const Fingerprint& fp : coverage) result.coverage.emplace_back(fp.a, fp.b);
  std::sort(result.coverage.begin(), result.coverage.end());

  if (result.original_violation) {
    result.stats.witness_steps_found =
        result.original_violation->schedule.size();
    result.violation = result.original_violation;
    if (options.shrink) {
      result.violation->schedule = shrink_witness(
          initial, result.original_violation->schedule,
          result.original_violation->kind, options.killed_is_violation);
    }
    result.stats.witness_steps_shrunk = result.violation->schedule.size();
  }
  result.rng_state = rng.state();
  return result;
}

std::optional<ViolationKind> classify_schedule(
    const SimWorld& initial, const std::vector<Choice>& schedule,
    bool killed_is_violation) {
  SimWorld world = initial;
  std::vector<std::vector<std::uint64_t>> encodes;
  encodes.reserve(schedule.size() + 1);
  encodes.push_back(world.encode());
  for (const Choice& c : schedule) {
    const auto enabled = world.enabled();
    if (std::find(enabled.begin(), enabled.end(), c) == enabled.end()) {
      return std::nullopt;  // not a legal schedule from this state
    }
    world.apply(c);
    encodes.push_back(world.encode());
  }
  if (world.terminal()) {
    ExploreOptions eo;
    eo.killed_is_violation = killed_is_violation;
    std::string detail;
    return detail::check_terminal(world, eo, detail);
  }
  if (schedule.empty()) return std::nullopt;
  const auto& final_state = encodes.back();
  for (std::size_t i = 0; i + 1 < encodes.size(); ++i) {
    if (encodes[i] != final_state) continue;
    for (std::size_t k = i; k < schedule.size(); ++k) {
      if (schedule[k].pid != kAdversaryPid) {
        return ViolationKind::kNontermination;
      }
    }
    return std::nullopt;  // only adversary steps repeat: not a process cycle
  }
  return std::nullopt;
}

std::vector<Choice> shrink_witness(const SimWorld& initial,
                                   const std::vector<Choice>& schedule,
                                   ViolationKind kind,
                                   bool killed_is_violation) {
  const auto violates = [&](const std::vector<Choice>& s) {
    return classify_schedule(initial, s, killed_is_violation) == kind;
  };
  std::vector<Choice> cur = schedule;
  if (!violates(cur)) return cur;

  bool progress = true;
  while (progress) {
    progress = false;

    // Phase 1 — chunk removal to a fixpoint.  Largest chunks first for
    // fast progress; every successful removal restarts the scan, so at
    // the fixpoint NO contiguous chunk of ANY size is removable.
    bool removed = true;
    while (removed) {
      removed = false;
      for (std::size_t len = cur.size(); len >= 1 && !removed; --len) {
        for (std::size_t start = 0; start + len <= cur.size(); ++start) {
          std::vector<Choice> cand;
          cand.reserve(cur.size() - len);
          cand.insert(cand.end(), cur.begin(),
                      cur.begin() + static_cast<std::ptrdiff_t>(start));
          cand.insert(cand.end(),
                      cur.begin() + static_cast<std::ptrdiff_t>(start + len),
                      cur.end());
          if (violates(cand)) {
            cur = std::move(cand);
            removed = true;
            progress = true;
            break;
          }
        }
      }
    }

    // Phase 2 — per-step canonicalization: replace each choice by the
    // smallest enabled alternative (choice_key order: lower pid, clean
    // over faulty over crashing, lower variant) that preserves the
    // violation.
    SimWorld world = initial;
    for (std::size_t i = 0; i < cur.size(); ++i) {
      std::vector<Choice> alternatives = world.enabled();
      std::sort(alternatives.begin(), alternatives.end(),
                [](const Choice& x, const Choice& y) {
                  return choice_key(x) < choice_key(y);
                });
      for (const Choice& alt : alternatives) {
        if (choice_key(alt) >= choice_key(cur[i])) break;
        std::vector<Choice> cand = cur;
        cand[i] = alt;
        if (violates(cand)) {
          cur = std::move(cand);
          progress = true;
          break;
        }
      }
      world.apply(cur[i]);
    }
  }
  return cur;
}

std::string FuzzResult::to_json() const {
  util::JsonWriter w;
  w.begin_object();
  w.kv("complete", complete);

  w.key("stats").begin_object();
  w.kv("executions", stats.executions);
  w.kv("total_steps", stats.total_steps);
  w.kv("corpus_entries", stats.corpus_entries);
  w.kv("unique_states", stats.unique_states);
  w.kv("violations_found", stats.violations_found);
  w.key("first_violation_exec");
  if (stats.first_violation_exec) {
    w.value(*stats.first_violation_exec);
  } else {
    w.null();
  }
  w.kv("witness_steps_found", stats.witness_steps_found);
  w.kv("witness_steps_shrunk", stats.witness_steps_shrunk);
  w.end_object();

  w.key("violations_by_kind").begin_object();
  for (const auto& [kind, count] : violations_by_kind) {
    w.kv(to_string(kind), count);
  }
  w.end_object();

  const auto emit_violation = [&w](const Violation& v) {
    w.begin_object();
    w.kv("kind", to_string(v.kind));
    w.kv("detail", v.detail);
    w.kv("steps", static_cast<std::uint64_t>(v.schedule.size()));
    w.kv("schedule", v.schedule_string());
    w.end_object();
  };
  w.key("violation");
  if (violation) {
    emit_violation(*violation);
  } else {
    w.null();
  }
  w.key("original_violation");
  if (original_violation) {
    emit_violation(*original_violation);
  } else {
    w.null();
  }
  w.key("first_by_kind").begin_object();
  for (const auto& [kind, v] : first_by_kind) {
    w.key(to_string(kind));
    emit_violation(v);
  }
  w.end_object();

  w.key("corpus").begin_array();
  for (const auto& schedule : corpus) {
    w.begin_array();
    for (const Choice& c : schedule) w.value(c.to_string());
    w.end_array();
  }
  w.end_array();

  w.key("coverage").begin_array();
  for (const auto& [a, b] : coverage) w.value(hex_fingerprint(a, b));
  w.end_array();

  w.key("rng_state").begin_array();
  for (const std::uint64_t word : rng_state) w.value(word);
  w.end_array();

  w.end_object();
  return w.str();
}

}  // namespace ff::sched
