// Statically proved facts about a protocol program, exported by the IR
// analyzer (src/proto/analysis/) for the scheduler layer to exploit.
//
// The scheduler cannot depend on the proto IR (the dependency points the
// other way), so the analyzer distills its results into this small
// IR-free structure:
//
//   * per-op static footprints — the may-touch location interval of every
//     pause site, so sleep-set POR (sched/reduce.hpp) can use the STATIC
//     independence relation, with the dynamic pending-op footprint kept
//     as a debug-build cross-check;
//   * the overriding-immunity mask — objects for which every reachable
//     CAS was proved to use a uniform desired value and a ⊥ expected
//     value, so the overriding-fault branch can never manifest and
//     SimWorld may soundly skip offering it (DESIGN.md §3h).
//
// A null ProgramFacts (the MachineFactory default) simply disables both
// uses: footprints fall back to the dynamic pending op and no fault
// branch is pruned.
#pragma once

#include <cstdint>
#include <vector>

namespace ff::sched {

/// "No static site": returned by StepMachine::pending_site() when the
/// machine cannot map its pending op to a program counter in the facts
/// table (legacy hand-written machines, halted machines).
inline constexpr std::uint32_t kNoSite = 0xFFFFFFFFu;

/// Static may-touch footprint of one pause site (program counter).
struct StaticFootprint {
  enum class Space : std::uint8_t {
    kNone,      ///< not a shared CAS/register op (local op, halt, queue)
    kObject,    ///< CAS object namespace
    kRegister,  ///< read/write register namespace
  };
  Space space = Space::kNone;
  /// True when the abstract index is a single constant: [lo, lo+1) and
  /// the static footprint equals the dynamic one at every reachable
  /// state.  Non-exact entries only bound the dynamic location.
  bool exact = false;
  /// False only for register reads; CAS steps always count as writes.
  bool writes = true;
  /// May-touch interval [lo, hi) over the space's index namespace.
  std::uint32_t lo = 0;
  std::uint32_t hi = 0;
};

/// Facts for one Program, indexed by program counter.  Immutable and
/// shared (shared_ptr) by every SimWorld built from the same factory.
struct ProgramFacts {
  /// footprints[pc] for every op of the program (kNone for local ops).
  std::vector<StaticFootprint> footprints;
  /// Bit o set: object o is proved overriding-immune — no reachable CAS
  /// on it can ever satisfy the overriding manifest condition, so the
  /// fault branch may be skipped without changing the census.  Objects
  /// with id >= 64 are never claimed immune.
  std::uint64_t immune_objects = 0;

  [[nodiscard]] bool object_immune(std::uint32_t id) const noexcept {
    return id < 64 && ((immune_objects >> id) & 1u) != 0;
  }
};

}  // namespace ff::sched
