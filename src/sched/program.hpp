// StepMachine — an explicit-program-counter encoding of a process program
// for the deterministic simulator.
//
// A StepMachine is the simulator-side twin of a consensus::Protocol: the
// same pseudocode, but with control state reified so the world can
// (a) snapshot/clone it for depth-first search over interleavings, and
// (b) serialize it for state-graph memoization.
//
// Contract:
//   * next_op() is pure: it may be called any number of times between
//     deliveries and must return the same step.
//   * deliver(returned) advances the machine past that step, given the
//     old value the CAS returned.
//   * Once done(), next_op() returns OpType::kNone and decision() is the
//     process's output.
//   * encode() appends the full local state (PC and locals) as words;
//     two machines with equal encodings must behave identically forever.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sched/facts.hpp"
#include "sched/step.hpp"

namespace ff::sched {

class StepMachine {
 public:
  virtual ~StepMachine() = default;

  [[nodiscard]] virtual PendingOp next_op() const = 0;
  virtual void deliver(model::Value returned) = 0;
  [[nodiscard]] virtual bool done() const = 0;
  [[nodiscard]] virtual std::uint64_t decision() const = 0;

  virtual void encode(std::vector<std::uint64_t>& out) const = 0;
  [[nodiscard]] virtual std::unique_ptr<StepMachine> clone() const = 0;

  /// Crash–recovery support (default: not crashable).  can_crash() is
  /// true when the machine has a recovery entry and is not done;
  /// crash() wipes the machine's volatile locals (to 0), preserves its
  /// persistent locals, and re-enters the program at the recovery entry.
  /// The legacy hand-written machines keep the defaults: no recovery
  /// label means the simulator never offers them a crash branch.
  [[nodiscard]] virtual bool can_crash() const { return false; }
  virtual void crash() {}

  /// Program counter of the pending shared op, for indexing the factory's
  /// static-analysis facts (ProgramFacts::footprints).  kNoSite when the
  /// machine cannot name one (halted, or a machine with no IR pedigree —
  /// the legacy hand-written machines keep this default), in which case
  /// the scheduler falls back to the dynamic pending-op footprint.
  [[nodiscard]] virtual std::uint32_t pending_site() const { return kNoSite; }
};

/// Factory producing the machine for process `pid` with input `input`.
/// Experiments parameterize this over the protocol under test.
class MachineFactory {
 public:
  virtual ~MachineFactory() = default;
  [[nodiscard]] virtual std::unique_ptr<StepMachine> make(
      objects::ProcessId pid, std::uint64_t input) const = 0;
  /// Number of CAS objects the produced machines address (O_0..O_{k-1}).
  [[nodiscard]] virtual std::uint32_t objects_used() const = 0;
  /// Number of read/write registers the machines address (default none).
  [[nodiscard]] virtual std::uint32_t registers_used() const { return 0; }
  /// True when the produced machines never observe their pid: make() must
  /// ignore `pid`, so a machine's behaviour and encoding are functions of
  /// its input and delivery history alone.  This is the enabling condition
  /// for process-symmetry reduction (sched/reduce.hpp): two processes
  /// with equal encoded blocks are then interchangeable forever, and the
  /// explorer may identify states up to a permutation of process ids.
  /// Defaults to false — a factory must opt in explicitly.
  [[nodiscard]] virtual bool pid_oblivious() const { return false; }
  [[nodiscard]] virtual std::string name() const = 0;
  /// Statically proved facts about the produced machines' program
  /// (sched/facts.hpp), or nullptr when no analyzer ran.  SimWorld reads
  /// this once at construction; the IR-backed factories override it with
  /// the ffcheck analysis result.
  [[nodiscard]] virtual std::shared_ptr<const ProgramFacts> facts() const {
    return nullptr;
  }
};

}  // namespace ff::sched
