// Step descriptors for the deterministic simulator.
//
// In the Section 2 model an execution alternates states and steps, where a
// step is one atomic operation on a shared object.  The simulator's
// processes (StepMachine) expose their next intended step as data, the
// scheduler picks which process moves, and the world applies the step's
// semantics — correct or faulty, as the fault-branching adversary chooses.
#pragma once

#include <cstdint>
#include <string>

#include "model/value.hpp"
#include "objects/shared_object.hpp"

namespace ff::sched {

enum class OpType : std::uint8_t {
  kCas,       ///< CAS(object, expected, desired) on a CAS object
  kRegRead,   ///< read(register) — registers are separate, always correct
  kRegWrite,  ///< write(register, desired)
  kNone,      ///< the process has terminated (no further steps)
};

/// The operation a process intends to perform at its next step.
/// For register ops, `object` indexes the register array (a namespace
/// disjoint from the CAS objects) and `expected` is unused.
struct PendingOp {
  OpType type = OpType::kNone;
  objects::ObjectId object = 0;
  model::Value expected;
  model::Value desired;

  static PendingOp cas(objects::ObjectId object, model::Value expected,
                       model::Value desired) {
    return PendingOp{OpType::kCas, object, expected, desired};
  }
  static PendingOp reg_read(objects::ObjectId reg) {
    return PendingOp{OpType::kRegRead, reg, {}, {}};
  }
  static PendingOp reg_write(objects::ObjectId reg, model::Value value) {
    return PendingOp{OpType::kRegWrite, reg, {}, value};
  }
  static PendingOp none() { return PendingOp{}; }
};

/// One scheduling choice: which process steps, and whether the adversary
/// fires a fault on that step.  `fault_variant` selects among multiple
/// possible faulty outcomes (used by the arbitrary/data faults whose Φ′
/// admits several written values); 0 for single-outcome faults.
///
/// `crash` selects the crash–recovery branch instead: the process crashes
/// at this step and immediately re-enters at its recovery label (volatile
/// locals wiped, persistent locals and shared objects preserved).  For a
/// crash, `fault_variant` distinguishes crash-before (0: the pending op
/// never reaches the object) from crash-after (1: the op's effect lands
/// on the shared object but the response is lost with the crash).
struct Choice {
  objects::ProcessId pid = 0;
  bool fault = false;
  std::uint32_t fault_variant = 0;
  bool crash = false;

  [[nodiscard]] std::string to_string() const {
    std::string s = "p" + std::to_string(pid);
    if (crash) {
      s += "~";
      if (fault_variant != 0) s += std::to_string(fault_variant);
      return s;
    }
    if (fault) {
      s += "!";
      if (fault_variant != 0) s += std::to_string(fault_variant);
    }
    return s;
  }

  friend bool operator==(const Choice&, const Choice&) noexcept = default;
};

}  // namespace ff::sched
