#include "sched/adversary.hpp"

#include <cassert>
#include <sstream>

namespace ff::sched {

namespace {

// Renders a value both raw and as a ⟨value,stage⟩ pair when the raw word
// has a plausible packed form (staged-protocol machines use packing; the
// log is for humans, so show both readings).
std::string render(model::Value v) {
  if (v.is_bottom()) return v.to_string();
  const auto sv = model::StagedValue::unpack(v);
  if (v.raw() >> 32 != 0) {
    return "<" + std::to_string(sv.value()) + "," +
           std::to_string(sv.stage()) + ">";
  }
  return v.to_string();
}

std::string describe_op(objects::ProcessId pid, const PendingOp& op) {
  std::ostringstream oss;
  oss << "p" << pid << ": CAS(O" << op.object << ", " << render(op.expected)
      << ", " << render(op.desired) << ")";
  return oss.str();
}

}  // namespace

CoveringAdversaryResult run_covering_adversary(
    const MachineFactory& factory, std::uint32_t f,
    const std::vector<std::uint64_t>& inputs, std::uint64_t step_cap) {
  assert(inputs.size() == f + 2);
  assert(factory.objects_used() == f);

  SimConfig config;
  config.num_objects = f;
  config.num_registers = factory.registers_used();
  config.kind = model::FaultKind::kOverriding;
  // The adversary manages its own fault accounting (exactly one per
  // object); the world-level budget is left unbounded.
  config.t = model::kUnbounded;

  SimWorld world(config, factory, inputs);
  CoveringAdversaryResult result;
  result.faults_per_object.assign(f, 0);

  auto run_solo_to_completion = [&](objects::ProcessId pid) -> bool {
    std::uint64_t steps = 0;
    while (!world.process_done(pid)) {
      if (++steps > step_cap) return false;
      world.apply({pid, false, 0});
      ++result.total_steps;
    }
    return true;
  };

  // Phase 1: p0 runs solo until it decides.
  if (!run_solo_to_completion(0)) {
    result.log.push_back("p0 exceeded the step cap (wait-freedom suspect)");
    return result;
  }
  result.p0_decision = world.machine(0).decision();
  result.log.push_back("p0 decided " + std::to_string(*result.p0_decision));

  // Phase 2: each pi commits one overriding fault on a fresh object.
  std::set<objects::ObjectId> written_by_adversary_group;
  for (objects::ProcessId pid = 1; pid <= f; ++pid) {
    bool halted = false;
    std::uint64_t steps = 0;
    while (!world.process_done(pid)) {
      if (++steps > step_cap) break;
      const PendingOp op = world.pending(pid);
      if (op.type != OpType::kCas) {
        // Register operations execute correctly; the covering argument
        // only manipulates CAS steps.
        world.apply({pid, false, 0});
        ++result.total_steps;
        continue;
      }
      if (written_by_adversary_group.contains(op.object)) {
        world.apply({pid, false, 0});  // correct step on a known object
        ++result.total_steps;
        continue;
      }
      // First CAS on a fresh object: fault it (if the comparison would
      // succeed anyway, the correct write has the identical overriding
      // effect and costs no fault) and halt pi.
      const bool manifests = world.object_value(op.object) != op.expected;
      result.log.push_back(describe_op(pid, op) +
                           (manifests ? " [overriding fault]"
                                      : " [writes via correct success]"));
      world.apply({pid, manifests, 0});
      ++result.total_steps;
      if (manifests) ++result.faults_per_object[op.object];
      written_by_adversary_group.insert(op.object);
      result.faulted_objects.push_back(op.object);
      halted = true;
      break;
    }
    if (!halted) {
      result.claim20_held = false;
      result.log.push_back("p" + std::to_string(pid) +
                           " finished without touching a fresh object "
                           "(Claim 20 did not apply)");
    }
  }

  // Phase 3: p_{f+1} runs solo to completion.
  const objects::ProcessId last = f + 1;
  if (!run_solo_to_completion(last)) {
    result.log.push_back("p_{f+1} exceeded the step cap");
    return result;
  }
  result.last_decision = world.machine(last).decision();
  result.log.push_back("p_{f+1} decided " +
                       std::to_string(*result.last_decision));

  result.both_decided = result.p0_decision && result.last_decision;
  result.disagreement =
      result.both_decided && *result.p0_decision != *result.last_decision;
  return result;
}

}  // namespace ff::sched
