// Internals shared by the sequential (explorer.cpp) and parallel
// (parallel_explorer.cpp) state-space explorers: the 128-bit state
// fingerprint and the terminal-state property check.
//
// Both explorers memoize on fingerprints rather than full encoded states.
// The soundness argument (see DESIGN.md §"Parallel exploration"): two
// distinct states collide with probability ~ |states|² / 2^128, so a
// completed exploration is a proof up to that negligible error, and —
// crucially — the argument is unchanged by sharding, because a sharded
// table partitions fingerprints by bits of the SAME 128-bit digest;
// sharding changes where a fingerprint is stored, never whether two
// distinct states are distinguished.
#pragma once

#include <algorithm>
#include <bit>
#include <cstdint>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "sched/explorer.hpp"
#include "sched/sim_world.hpp"
#include "util/rng.hpp"

namespace ff::sched::detail {

/// 128-bit fingerprint of an encoded state: two independent accumulation
/// lanes.  Collisions would require ~2^64 states; the search caps out
/// orders of magnitude earlier.
struct Fingerprint {
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  friend bool operator==(const Fingerprint&, const Fingerprint&) noexcept =
      default;
};

struct FingerprintHash {
  std::size_t operator()(const Fingerprint& fp) const noexcept {
    return static_cast<std::size_t>(fp.a ^ (fp.b * 0x9e3779b97f4a7c15ULL));
  }
};

/// Streaming fingerprint fold.  Per word each lane does one rotate-xor
/// (resp. rotate-add) and one multiply by an odd constant — a ~4-cycle
/// dependency chain versus ~15 for a full SplitMix64 round, which
/// matters because the fold is on the explorers' per-edge hot path.
/// The multiplies are bijective (odd constants) so no word is ever
/// absorbed; done() runs both lanes through a full mix64 avalanche,
/// which is what makes the low bits usable as table indices.
struct FpFold {
  std::uint64_t a = 0x243f6a8885a308d3ULL;
  std::uint64_t b = 0x13198a2e03707344ULL;
  std::uint64_t len = 0;

  void fold(std::uint64_t w) noexcept {
    a = (std::rotl(a, 5) ^ w) * 0x9e3779b97f4a7c15ULL;
    b = (std::rotl(b, 7) + w) * 0xc2b2ae3d27d4eb4fULL;
    ++len;
  }

  [[nodiscard]] Fingerprint done() const noexcept {
    return Fingerprint{util::mix64(a ^ len), util::mix64(b + len)};
  }
};

[[nodiscard]] inline Fingerprint fingerprint(
    const std::vector<std::uint64_t>& encoded) {
  FpFold f;
  for (const std::uint64_t w : encoded) f.fold(w);
  return f.done();
}

/// Flat open-addressing hash table from 128-bit fingerprints to dense
/// 32-bit ids — the sequential explorer's hot-path replacement for
/// std::unordered_set/map (one contiguous allocation, linear probing, no
/// per-node indirection).  Emptiness is tracked by the value sentinel, so
/// any fingerprint (including all-zero) is a legal key.
class FlatFpMap {
 public:
  static constexpr std::uint32_t kNoValue = 0xFFFFFFFFu;

  explicit FlatFpMap(std::size_t expected = 1024) {
    std::size_t cap = 16;
    // Size for expected entries at < 70% load.
    while (cap * 7 < expected * 10) cap <<= 1;
    slots_.assign(cap, Entry{});
    mask_ = cap - 1;
  }

  /// If `fp` is present returns its stored value; otherwise stores
  /// fp → value and returns kNoValue.  `value` must not be kNoValue.
  std::uint32_t insert_or_get(const Fingerprint& fp, std::uint32_t value) {
    if ((size_ + 1) * 10 > (mask_ + 1) * 7) grow();
    std::size_t i = static_cast<std::size_t>(fp.a) & mask_;
    // Linear probing terminates: load is kept < 70%, so an empty slot
    // exists within the table (bounded by its capacity).
    for (std::size_t step = 0; step <= mask_; ++step) {
      Entry& e = slots_[i];
      if (e.value == kNoValue) {
        e.key = fp;
        e.value = value;
        ++size_;
        return kNoValue;
      }
      if (e.key == fp) return e.value;
      i = (i + 1) & mask_;
    }
    return kNoValue;  // unreachable: table never fills
  }

  /// Hints the cache that `fp`'s home slot is about to be probed.  The
  /// table is tens of megabytes at full-grid sizes, so every probe is a
  /// DRAM miss; issuing the prefetch as soon as the fingerprint is known
  /// overlaps that miss with the caller's remaining per-edge work.
  void prefetch(const Fingerprint& fp) const noexcept {
#if defined(__GNUC__) || defined(__clang__)
    __builtin_prefetch(&slots_[static_cast<std::size_t>(fp.a) & mask_]);
#else
    (void)fp;
#endif
  }

  /// Value stored for `fp`, or kNoValue when absent.
  [[nodiscard]] std::uint32_t find(const Fingerprint& fp) const {
    std::size_t i = static_cast<std::size_t>(fp.a) & mask_;
    for (std::size_t step = 0; step <= mask_; ++step) {
      const Entry& e = slots_[i];
      if (e.value == kNoValue) return kNoValue;
      if (e.key == fp) return e.value;
      i = (i + 1) & mask_;
    }
    return kNoValue;
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return mask_ + 1; }

  /// Number of mid-run rehashes.  Stays 0 exactly when the construction
  /// hint covered the final size at < 70% load — what ExploreResult's
  /// table_grows reports and the pre-sizing regression test pins.
  [[nodiscard]] std::size_t grows() const noexcept { return grows_; }

 private:
  struct Entry {
    Fingerprint key;
    std::uint32_t value = kNoValue;
  };

  void grow() {
    ++grows_;
    std::vector<Entry> old = std::move(slots_);
    const std::size_t cap = (mask_ + 1) << 1;
    slots_.assign(cap, Entry{});
    mask_ = cap - 1;
    for (const Entry& e : old) {
      if (e.value == kNoValue) continue;
      std::size_t i = static_cast<std::size_t>(e.key.a) & mask_;
      while (slots_[i].value != kNoValue) i = (i + 1) & mask_;
      slots_[i] = e;
    }
  }

  std::vector<Entry> slots_;
  std::size_t mask_ = 0;
  std::size_t size_ = 0;
  std::size_t grows_ = 0;
};

/// Pre-size for the fingerprint tables and per-state arenas, shared by
/// every FlatFpMap consumer (the sequential explorer, shortest-witness
/// search, batched pools).  An explicit expected_states hint is the
/// caller asserting the census size, so it is trusted up to 2^26
/// entries — the old 2^24 cap silently re-capped exact large hints and
/// made the table rehash mid-census right after a run had measured the
/// true size (the stale-pre-size bug ExploreResult::table_grows now
/// guards against).  Without a hint, cap at 2^16: max_states defaults
/// to tens of millions and pre-allocating for it would waste hundreds
/// of megabytes on small instances.
[[nodiscard]] inline std::size_t table_hint(const ExploreOptions& options) {
  constexpr std::uint64_t kDefaultCap = std::uint64_t{1} << 16;
  constexpr std::uint64_t kHintCap = std::uint64_t{1} << 26;
  if (options.expected_states != 0) {
    return static_cast<std::size_t>(
        std::min<std::uint64_t>(options.expected_states, kHintCap));
  }
  const std::uint64_t bound =
      options.max_states == 0 ? kDefaultCap : options.max_states;
  return static_cast<std::size_t>(std::min<std::uint64_t>(bound, kDefaultCap));
}

/// Checks a terminal world; returns a violation kind if one applies.
[[nodiscard]] inline std::optional<ViolationKind> check_terminal(
    const SimWorld& world, const ExploreOptions& options,
    std::string& detail) {
  const auto decisions = world.decisions();
  const auto& inputs = world.inputs();
  const std::set<std::uint64_t> input_set(inputs.begin(), inputs.end());

  std::optional<std::uint64_t> first;
  for (std::uint32_t pid = 0; pid < decisions.size(); ++pid) {
    if (!decisions[pid]) continue;
    const std::uint64_t value = *decisions[pid];
    if (!input_set.contains(value)) {
      std::ostringstream oss;
      oss << "p" << pid << " decided " << value
          << " which is no process's input";
      detail = oss.str();
      return ViolationKind::kInvalid;
    }
    if (first && *first != value) {
      std::ostringstream oss;
      oss << "decisions disagree: " << *first << " vs " << value << " (p"
          << pid << ")";
      detail = oss.str();
      return ViolationKind::kInconsistent;
    }
    if (!first) first = value;
  }
  if (options.killed_is_violation && world.any_killed()) {
    detail = "a process was killed by a nonresponsive fault";
    return ViolationKind::kStalled;
  }
  return std::nullopt;
}

/// The representative agreed value of a consistent terminal state, if any
/// process decided (both explorers record the same representative).
[[nodiscard]] inline std::optional<std::uint64_t> agreed_value(
    const SimWorld& world) {
  for (const auto& d : world.decisions()) {
    if (d) return *d;
  }
  return std::nullopt;
}

}  // namespace ff::sched::detail
