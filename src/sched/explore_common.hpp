// Internals shared by the sequential (explorer.cpp) and parallel
// (parallel_explorer.cpp) state-space explorers: the 128-bit state
// fingerprint and the terminal-state property check.
//
// Both explorers memoize on fingerprints rather than full encoded states.
// The soundness argument (see DESIGN.md §"Parallel exploration"): two
// distinct states collide with probability ~ |states|² / 2^128, so a
// completed exploration is a proof up to that negligible error, and —
// crucially — the argument is unchanged by sharding, because a sharded
// table partitions fingerprints by bits of the SAME 128-bit digest;
// sharding changes where a fingerprint is stored, never whether two
// distinct states are distinguished.
#pragma once

#include <cstdint>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "sched/explorer.hpp"
#include "sched/sim_world.hpp"
#include "util/rng.hpp"

namespace ff::sched::detail {

/// 128-bit fingerprint of an encoded state: two independent SplitMix64
/// chains.  Collisions would require ~2^64 states; the search caps out
/// orders of magnitude earlier.
struct Fingerprint {
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  friend bool operator==(const Fingerprint&, const Fingerprint&) noexcept =
      default;
};

struct FingerprintHash {
  std::size_t operator()(const Fingerprint& fp) const noexcept {
    return static_cast<std::size_t>(fp.a ^ (fp.b * 0x9e3779b97f4a7c15ULL));
  }
};

[[nodiscard]] inline Fingerprint fingerprint(
    const std::vector<std::uint64_t>& encoded) {
  Fingerprint fp{0x243f6a8885a308d3ULL, 0x13198a2e03707344ULL};
  for (const std::uint64_t w : encoded) {
    fp.a = util::mix64(fp.a ^ w);
    fp.b = util::mix64(fp.b + w + 0xa5a5a5a5a5a5a5a5ULL);
  }
  return fp;
}

/// Checks a terminal world; returns a violation kind if one applies.
[[nodiscard]] inline std::optional<ViolationKind> check_terminal(
    const SimWorld& world, const ExploreOptions& options,
    std::string& detail) {
  const auto decisions = world.decisions();
  const auto& inputs = world.inputs();
  const std::set<std::uint64_t> input_set(inputs.begin(), inputs.end());

  std::optional<std::uint64_t> first;
  for (std::uint32_t pid = 0; pid < decisions.size(); ++pid) {
    if (!decisions[pid]) continue;
    const std::uint64_t value = *decisions[pid];
    if (!input_set.contains(value)) {
      std::ostringstream oss;
      oss << "p" << pid << " decided " << value
          << " which is no process's input";
      detail = oss.str();
      return ViolationKind::kInvalid;
    }
    if (first && *first != value) {
      std::ostringstream oss;
      oss << "decisions disagree: " << *first << " vs " << value << " (p"
          << pid << ")";
      detail = oss.str();
      return ViolationKind::kInconsistent;
    }
    if (!first) first = value;
  }
  if (options.killed_is_violation && world.any_killed()) {
    detail = "a process was killed by a nonresponsive fault";
    return ViolationKind::kStalled;
  }
  return std::nullopt;
}

/// The representative agreed value of a consistent terminal state, if any
/// process decided (both explorers record the same representative).
[[nodiscard]] inline std::optional<std::uint64_t> agreed_value(
    const SimWorld& world) {
  for (const auto& d : world.decisions()) {
    if (d) return *d;
  }
  return std::nullopt;
}

}  // namespace ff::sched::detail
