#include "sched/explorer.hpp"

#include <algorithm>
#include <cassert>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "sched/explore_common.hpp"
#include "sched/reduce.hpp"

namespace ff::sched {

using detail::Fingerprint;
using detail::FingerprintHash;
using detail::FlatFpMap;
using detail::check_terminal;
using detail::fingerprint;
using detail::table_hint;

ExploreResult explore(const SimWorld& initial, const ExploreOptions& options) {
  ExploreResult result;

  // The prune counters live in the world and are SHARED by every copy
  // (including `cur` below), so this search's contribution is the delta
  // over the initial snapshot — callers may reuse one world across runs.
  const std::uint64_t checks0 = initial.immunity_checks();
  const std::uint64_t skips0 = initial.immunity_skips();

  const bool sym =
      options.symmetry_reduction && initial.processes_symmetric();
  const bool por = options.sleep_sets;

  constexpr std::uint32_t kNotOnPath = 0xFFFFFFFFu;

  // DFS frames index into shared arenas instead of owning vectors: the
  // frame's arrival sleep set and its transition list live contiguously
  // in choice_arena (footprints parallel in foot_arena), and frame pops
  // truncate LIFO-style.  Worlds and encodings stay REAL (one concrete
  // representative); only the memoization key is canonicalized, so every
  // recorded witness is a directly replayable schedule.
  //
  // Frames do NOT own worlds.  The stack is always a root-to-current
  // path, so a single world (`cur`) is stepped in place on descent and
  // rolled back on pop via a per-depth StepUndo stack — no state ever
  // pays a full world copy (which clones every machine), only the one
  // machine clone its arrival step saves.
  struct Frame {
    EncodedState enc;
    std::uint32_t id = 0;
    std::uint32_t prev_path_frame = kNotOnPath;
    std::uint32_t arena_base = 0;
    std::uint32_t sleep_off = 0;
    std::uint32_t sleep_count = 0;
    std::uint32_t tran_off = 0;
    std::uint32_t tran_count = 0;
    std::uint32_t next = 0;
    /// Number of choices from the root to this frame's state.
    std::uint32_t depth = 0;
  };

  StateEncoder encoder;
  FlatFpMap table(table_hint(options));
  std::uint32_t next_id = 0;

  // Per-state side data, indexed by the dense id the table hands out.
  std::vector<std::uint32_t> path_frame;  // frame index while on DFS path
  // Stored sleep set (Godefroid state matching): canonical keys, sorted,
  // as (begin, end) spans into the append-only sleep_store arena.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> sleep_span;
  std::vector<std::uint64_t> sleep_store;

  std::vector<Frame> stack;
  std::vector<Choice> choice_arena;
  std::vector<Footprint> foot_arena;
  std::vector<Choice> path;
  stack.reserve(256);
  choice_arena.reserve(4096);
  path.reserve(1024);
  const std::size_t hint = table_hint(options);
  path_frame.reserve(hint);
  sleep_span.reserve(por ? hint : 0);

  // The one concrete world, stepped in place.  undo_stack[i] rolls the
  // world back from frame i's state to frame i-1's; the slots are reused
  // across the search so their buffers stop allocating.
  SimWorld cur(initial);
  std::vector<SimWorld::StepUndo> undo_stack;
  undo_stack.resize(64);
  auto undo_slot = [&](std::size_t i) -> SimWorld::StepUndo& {
    if (i >= undo_stack.size()) undo_stack.resize(i + 32);
    return undo_stack[i];
  };

  // Reusable scratch (cleared per use).
  EncodedState child_enc;
  std::vector<Choice> child_sleep;
  std::vector<Choice> missing_choices;
  std::vector<std::uint32_t> order_scratch;
  std::vector<std::uint32_t> slot_scratch;
  std::vector<std::uint64_t> keys_scratch;
  std::vector<std::uint64_t> missing_keys;
  std::vector<std::uint64_t> inter_keys;
  const std::vector<std::uint32_t> kIdentity;  // empty = identity mapping

  // Sorted canonical keys of `cs`, slotted against encoding `e`.
  auto keys_of = [&](const std::vector<Choice>& cs, const EncodedState& e)
      -> const std::vector<std::uint64_t>& {
    keys_scratch.clear();
    if (cs.empty()) return keys_scratch;
    slot_scratch.clear();
    if (sym) canonical_slots(e, slot_scratch);
    for (const Choice& c : cs) {
      keys_scratch.push_back(sleep_key(c, sym ? slot_scratch : kIdentity));
    }
    std::sort(keys_scratch.begin(), keys_scratch.end());
    return keys_scratch;
  };

  auto store_keys = [&](const std::vector<std::uint64_t>& keys)
      -> std::pair<std::uint32_t, std::uint32_t> {
    if (keys.empty()) return {0, 0};
    const auto begin = static_cast<std::uint32_t>(sleep_store.size());
    sleep_store.insert(sleep_store.end(), keys.begin(), keys.end());
    return {begin, static_cast<std::uint32_t>(sleep_store.size())};
  };

  // Pushes a frame for the state `cur` currently holds.
  auto push_frame = [&](EncodedState&& enc, std::uint32_t id,
                        std::uint32_t depth,
                        const std::vector<Choice>& arrival_sleep,
                        const std::vector<Choice>* explicit_trans) {
    const auto arena_base = static_cast<std::uint32_t>(choice_arena.size());
    choice_arena.insert(choice_arena.end(), arrival_sleep.begin(),
                        arrival_sleep.end());
    const auto sleep_count =
        static_cast<std::uint32_t>(arrival_sleep.size());
    const auto tran_off = static_cast<std::uint32_t>(choice_arena.size());
    if (explicit_trans != nullptr) {
      choice_arena.insert(choice_arena.end(), explicit_trans->begin(),
                          explicit_trans->end());
    } else {
      for (const Choice& c : cur.enabled()) {
        if (por && std::find(arrival_sleep.begin(), arrival_sleep.end(), c) !=
                       arrival_sleep.end()) {
          continue;  // asleep: an equivalent interleaving is explored
        }
        choice_arena.push_back(c);
      }
    }
    const auto tran_count =
        static_cast<std::uint32_t>(choice_arena.size()) - tran_off;
    if (por) {
      foot_arena.resize(choice_arena.size());
      for (std::size_t i = arena_base; i < choice_arena.size(); ++i) {
        foot_arena[i] = footprint_of(cur, choice_arena[i]);
      }
    }
    const std::uint32_t prev = path_frame[id];
    path_frame[id] = static_cast<std::uint32_t>(stack.size());
    stack.push_back(Frame{std::move(enc), id, prev, arena_base, arena_base,
                          sleep_count, tran_off, tran_count, 0, depth});
  };

  auto record_terminal = [&](const SimWorld& world) {
    ++result.terminal_states;
    std::string detail;
    const auto kind = check_terminal(world, options, detail);
    if (kind) {
      ++result.violations_found;
      ++result.violations_by_kind[*kind];
      if (!result.violation) {
        result.violation = Violation{*kind, path, std::move(detail)};
      }
      return options.stop_at_first_violation;
    }
    if (const auto agreed = detail::agreed_value(world)) {
      result.agreed_values.insert(*agreed);
    }
    return false;
  };

  EncodedState root_enc;
  encoder.encode(initial, root_enc);
  table.insert_or_get(fingerprint_state(root_enc, sym), next_id++);
  path_frame.push_back(kNotOnPath);
  sleep_span.emplace_back(0, 0);
  result.states_visited = 1;

  if (initial.terminal()) {
    record_terminal(initial);
    result.complete =
        result.violations_found == 0 || !options.stop_at_first_violation;
    result.table_grows = table.grows();
    result.immunity_checks = initial.immunity_checks() - checks0;
    result.immunity_skips = initial.immunity_skips() - skips0;
    result.peak_bytes = table.capacity() * 24;
    return result;
  }

  push_frame(std::move(root_enc), 0, 0, {}, nullptr);

  bool aborted = false;
  while (!stack.empty()) {
    Frame& frame = stack.back();
    if (frame.next >= frame.tran_count) {
      path_frame[frame.id] = frame.prev_path_frame;
      path.resize(frame.depth == 0 ? 0 : frame.depth - 1);
      choice_arena.resize(frame.arena_base);
      if (foot_arena.size() > frame.arena_base) {
        foot_arena.resize(frame.arena_base);
      }
      if (stack.size() > 1) cur.undo_step(undo_stack[stack.size() - 1]);
      stack.pop_back();
      continue;
    }

    const std::uint32_t ti = frame.next++;
    const Choice choice = choice_arena[frame.tran_off + ti];
    // Expand in place (StepUndo): `cur` steps forward; if the child turns
    // out to be a duplicate or terminal it is rolled back immediately, if
    // it becomes a frame the undo stays on undo_stack until that frame
    // pops.  Either way the step costs one machine clone, never a full
    // world copy.  Everything the child-side logic below consumes
    // (footprints, transition lists, sibling sleeps) was precomputed into
    // the arenas at push time, so the parent world being mutated out from
    // under the frame is never observed.
    SimWorld::StepUndo& undo = undo_slot(stack.size());
    cur.apply_with_undo(choice, undo);
    encoder.patch(cur, frame.enc, choice.pid, child_enc);
    const Fingerprint fp = fingerprint_state(child_enc, sym);
    table.prefetch(fp);  // overlap the probe's DRAM miss with the below

    path.push_back(choice);
    result.max_depth = std::max<std::uint64_t>(result.max_depth, path.size());

    // Sleep set the child arrives with: every still-independent member of
    // this frame's arrival sleep, plus every earlier-explored transition
    // of this frame that is independent of the chosen step (Godefroid).
    child_sleep.clear();
    if (por) {
      const Footprint& fc = foot_arena[frame.tran_off + ti];
      for (std::uint32_t i = 0; i < frame.sleep_count; ++i) {
        const Choice& s = choice_arena[frame.sleep_off + i];
        if (independent(s, foot_arena[frame.sleep_off + i], choice, fc)) {
          child_sleep.push_back(s);
        }
      }
      for (std::uint32_t j = 0; j < ti; ++j) {
        const Choice& e = choice_arena[frame.tran_off + j];
        if (independent(e, foot_arena[frame.tran_off + j], choice, fc)) {
          child_sleep.push_back(e);
        }
      }
    }

    const std::uint32_t existing = table.insert_or_get(fp, next_id);
    if (existing == FlatFpMap::kNoValue) {
      const std::uint32_t id = next_id++;
      path_frame.push_back(kNotOnPath);
      sleep_span.push_back(store_keys(keys_of(child_sleep, child_enc)));
      ++result.states_visited;
      if (options.max_states != 0 &&
          result.states_visited > options.max_states) {
        aborted = true;
        break;
      }
      if (cur.terminal()) {
        const bool stop = record_terminal(cur);
        cur.undo_step(undo);
        path.pop_back();
        if (stop) {
          aborted = true;
          break;
        }
        continue;
      }
      const auto depth = static_cast<std::uint32_t>(path.size());
      push_frame(std::move(child_enc), id, depth, child_sleep, nullptr);
      continue;
    }

    const std::uint32_t v = existing;

    // Godefroid state matching (decided before rolling back, while
    // child_enc is live): if this arrival carries a smaller sleep set
    // than the state was explored with, the difference was pruned under
    // an assumption that no longer holds — those transitions must be
    // re-expanded below.
    bool reexpand = false;
    if (por) {
      const auto& arrival_keys = keys_of(child_sleep, child_enc);
      const auto [sbegin, send] = sleep_span[v];
      missing_keys.clear();
      if (send > sbegin) {
        std::set_difference(sleep_store.begin() + sbegin,
                            sleep_store.begin() + send, arrival_keys.begin(),
                            arrival_keys.end(),
                            std::back_inserter(missing_keys));
      }
      if (!missing_keys.empty()) {
        reexpand = true;
        inter_keys.clear();
        std::set_intersection(sleep_store.begin() + sbegin,
                              sleep_store.begin() + send,
                              arrival_keys.begin(), arrival_keys.end(),
                              std::back_inserter(inter_keys));
        sleep_span[v] = store_keys(inter_keys);
        order_scratch.clear();
        if (sym) canonical_order(child_enc, order_scratch);
        missing_choices.clear();
        for (const std::uint64_t key : missing_keys) {
          missing_choices.push_back(resolve_sleep_key(key, order_scratch));
        }
      }
    }
    // When re-expanding, `cur` stays at the child state (the undo stays
    // on the stack and rolls back when the pushed frame pops); otherwise
    // roll back to the parent now.
    if (!reexpand) cur.undo_step(undo);

    if (path_frame[v] != kNotOnPath) {
      // Back-edge: the child is (an orbit-mate of) a state on the current
      // path — an infinite execution exists.  It violates wait-freedom
      // only if a process (not the corruption adversary) steps within the
      // repeating segment.
      const Frame& anc = stack[path_frame[v]];
      bool process_steps = false;
      for (std::size_t i = anc.depth; i < path.size(); ++i) {
        if (path[i].pid != kAdversaryPid) {
          process_steps = true;
          break;
        }
      }
      if (process_steps) {
        ++result.violations_found;
        ++result.violations_by_kind[ViolationKind::kNontermination];
        if (!result.violation) {
          std::vector<Choice> witness = path;
          if (sym) {
            // Under symmetry the segment returns to an orbit-mate, not
            // necessarily the exact ancestor encoding; extend it by
            // permuted laps until the encoding closes exactly, so the
            // witness strict-replays.  Frames hold no worlds, so the
            // ancestor state is rebuilt by replaying its path prefix —
            // a one-off O(depth) cost on the first witness only.
            SimWorld anc_world(initial);
            for (std::size_t i = 0; i < anc.depth; ++i) {
              anc_world.apply(path[i]);
            }
            const std::vector<Choice> segment(path.begin() + anc.depth,
                                              path.end());
            if (auto closed = close_symmetric_cycle(anc_world, segment)) {
              witness.assign(path.begin(), path.begin() + anc.depth);
              witness.insert(witness.end(), closed->begin(), closed->end());
            }
          }
          result.violation =
              Violation{ViolationKind::kNontermination, std::move(witness),
                        "cycle in the state graph: a process can take "
                        "steps forever"};
        }
        if (options.stop_at_first_violation) {
          aborted = true;
          break;
        }
      }
    }

    if (reexpand) {
      const auto depth = static_cast<std::uint32_t>(path.size());
      push_frame(std::move(child_enc), v, depth, child_sleep,
                 &missing_choices);
      continue;
    }

    path.pop_back();
  }

  result.complete = !aborted && stack.empty();
  result.table_grows = table.grows();
  result.immunity_checks = cur.immunity_checks() - checks0;
  result.immunity_skips = cur.immunity_skips() - skips0;
  // End-of-run capacity census of the monotone search structures (the
  // table and the per-state/per-frame arenas are never shrunk, so final
  // capacity is peak capacity).
  result.peak_bytes =
      table.capacity() * 24 + path_frame.capacity() * sizeof(std::uint32_t) +
      sleep_span.capacity() * sizeof(sleep_span[0]) +
      sleep_store.capacity() * 8 + stack.capacity() * sizeof(Frame) +
      choice_arena.capacity() * sizeof(Choice) +
      foot_arena.capacity() * sizeof(Footprint) +
      path.capacity() * sizeof(Choice);
  return result;
}

SimWorld replay(const SimWorld& initial, const std::vector<Choice>& schedule) {
  SimWorld world = initial;
  for (const Choice& choice : schedule) world.apply(choice);
  return world;
}

LongestExecutionResult longest_execution(const SimWorld& initial,
                                         const ExploreOptions& options) {
  LongestExecutionResult result;

  const bool sym =
      options.symmetry_reduction && initial.processes_symmetric();

  // Post-order DFS computing, per state, the longest distance to any
  // terminal.  A back-edge to a state on the current path is a cycle:
  // some execution runs forever and no finite bound exists.  Distances
  // are orbit-invariant (a permutation maps executions to equal-length
  // executions), so memoizing on canonical fingerprints is sound.  Sleep
  // sets are NOT applied here: they prune interleavings whose lengths
  // are equal, but the DP below walks explored edges only, so we keep
  // the full edge set for simplicity.
  struct Frame {
    SimWorld world;
    Fingerprint fp;
    std::vector<Choice> choices;
    std::size_t next = 0;
    std::uint64_t best = 0;
  };

  StateEncoder encoder;
  EncodedState enc;
  const auto fp_of = [&](const SimWorld& world) {
    encoder.encode(world, enc);
    return fingerprint_state(enc, sym);
  };

  std::unordered_map<Fingerprint, std::uint64_t, FingerprintHash> memo;
  std::unordered_set<Fingerprint, FingerprintHash> on_path;
  std::vector<Frame> stack;
  stack.reserve(256);

  const Fingerprint root_fp = fp_of(initial);
  result.states_visited = 1;
  if (initial.terminal()) {
    result.complete = true;
    return result;
  }
  stack.push_back(Frame{initial, root_fp, initial.enabled(), 0, 0});
  on_path.insert(root_fp);

  while (!stack.empty()) {
    Frame& frame = stack.back();
    if (frame.next >= frame.choices.size()) {
      memo.emplace(frame.fp, frame.best);
      on_path.erase(frame.fp);
      const std::uint64_t finished = frame.best;
      stack.pop_back();
      if (stack.empty()) {
        result.max_total_steps = finished;
        result.complete = true;
        return result;
      }
      Frame& parent = stack.back();
      parent.best = std::max(parent.best, finished + 1);
      continue;
    }

    const Choice choice = frame.choices[frame.next++];
    SimWorld child = frame.world;
    child.apply(choice);
    const Fingerprint fp = fp_of(child);

    if (on_path.contains(fp)) {
      result.bounded = false;  // cycle: unbounded execution exists
      return result;
    }
    if (const auto it = memo.find(fp); it != memo.end()) {
      frame.best = std::max(frame.best, it->second + 1);
      continue;
    }
    ++result.states_visited;
    if (options.max_states != 0 &&
        result.states_visited > options.max_states) {
      return result;  // incomplete
    }
    if (child.terminal()) {
      memo.emplace(fp, 0);
      frame.best = std::max(frame.best, std::uint64_t{1});
      continue;
    }
    auto choices = child.enabled();
    on_path.insert(fp);
    stack.push_back(Frame{std::move(child), fp, std::move(choices), 0, 0});
  }
  result.complete = true;
  return result;
}

ShortestViolationResult find_shortest_violation(const SimWorld& initial,
                                                const ExploreOptions& options) {
  ShortestViolationResult result;

  const bool sym =
      options.symmetry_reduction && initial.processes_symmetric();

  struct Node {
    SimWorld world;
    std::vector<Choice> path;
  };

  StateEncoder encoder;
  EncodedState enc;
  const auto fp_of = [&](const SimWorld& world) {
    encoder.encode(world, enc);
    return fingerprint_state(enc, sym);
  };

  // Symmetry only: BFS expands real worlds and dedups orbit-mates, so
  // minimality is preserved (a length-L execution exists to a violating
  // state iff one exists to its representative's orbit).  Sleep sets are
  // not applied — they would not change the visited-state count and BFS
  // has no path context to carry them soundly.
  FlatFpMap visited(table_hint(options));
  std::vector<Node> frontier;
  frontier.reserve(64);
  frontier.push_back({initial, {}});
  visited.insert_or_get(fp_of(initial), 0);
  result.states_visited = 1;

  auto check = [&](const Node& node) -> bool {
    if (!node.world.terminal()) return false;
    std::string detail;
    const auto kind = check_terminal(node.world, options, detail);
    if (kind) {
      result.violation = Violation{*kind, node.path, std::move(detail)};
      return true;
    }
    return false;
  };

  if (check(frontier.front())) return result;

  while (!frontier.empty()) {
    std::vector<Node> next;
    next.reserve(frontier.size() * 2);
    for (const Node& node : frontier) {
      for (const Choice& choice : node.world.enabled()) {
        SimWorld child = node.world;
        child.apply(choice);
        const Fingerprint fp = fp_of(child);
        if (visited.insert_or_get(fp, 0) != FlatFpMap::kNoValue) continue;
        ++result.states_visited;
        if (options.max_states != 0 &&
            result.states_visited > options.max_states) {
          return result;  // incomplete, no violation found yet
        }
        Node child_node{std::move(child), node.path};
        child_node.path.push_back(choice);
        if (check(child_node)) {
          return result;  // BFS order ⇒ this witness is minimal
        }
        if (!child_node.world.terminal()) {
          next.push_back(std::move(child_node));
        }
      }
    }
    frontier = std::move(next);
  }
  result.complete = true;
  return result;
}

}  // namespace ff::sched
