#include "sched/explorer.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "sched/explore_common.hpp"

namespace ff::sched {

using detail::Fingerprint;
using detail::FingerprintHash;
using detail::check_terminal;
using detail::fingerprint;

ExploreResult explore(const SimWorld& initial, const ExploreOptions& options) {
  ExploreResult result;

  struct Frame {
    SimWorld world;
    std::vector<Choice> choices;
    std::size_t next = 0;
  };

  std::unordered_set<Fingerprint, FingerprintHash> visited;
  // Fingerprint → depth on the current DFS path (for cycle detection).
  std::unordered_map<Fingerprint, std::uint64_t, FingerprintHash> on_path;
  std::vector<Frame> stack;
  std::vector<Choice> path;

  auto record_terminal = [&](const SimWorld& world) {
    ++result.terminal_states;
    std::string detail;
    const auto kind = check_terminal(world, options, detail);
    if (kind) {
      ++result.violations_found;
      ++result.violations_by_kind[*kind];
      if (!result.violation) {
        result.violation = Violation{*kind, path, std::move(detail)};
      }
      return options.stop_at_first_violation;
    }
    if (const auto agreed = detail::agreed_value(world)) {
      result.agreed_values.insert(*agreed);
    }
    return false;
  };

  const Fingerprint root_fp = fingerprint(initial.encode());
  visited.insert(root_fp);
  on_path.emplace(root_fp, 0);
  result.states_visited = 1;

  if (initial.terminal()) {
    record_terminal(initial);
    result.complete = result.violations_found == 0 ||
                      !options.stop_at_first_violation;
    return result;
  }

  stack.push_back(Frame{initial, initial.enabled(), 0});

  bool aborted = false;
  while (!stack.empty()) {
    Frame& frame = stack.back();
    if (frame.next >= frame.choices.size()) {
      const Fingerprint fp = fingerprint(frame.world.encode());
      on_path.erase(fp);
      stack.pop_back();
      if (!path.empty()) path.pop_back();
      continue;
    }

    const Choice choice = frame.choices[frame.next++];
    SimWorld child = frame.world;
    child.apply(choice);
    const Fingerprint fp = fingerprint(child.encode());

    path.push_back(choice);
    result.max_depth = std::max<std::uint64_t>(result.max_depth, path.size());

    // Cycle detection: returning to a state on the current path means an
    // infinite execution exists.  It violates wait-freedom only if a
    // process (not the corruption adversary) steps within the cycle.
    if (const auto it = on_path.find(fp); it != on_path.end()) {
      const std::uint64_t cycle_start = it->second;
      bool process_steps = false;
      for (std::size_t i = cycle_start; i < path.size(); ++i) {
        if (path[i].pid != kAdversaryPid) {
          process_steps = true;
          break;
        }
      }
      if (process_steps) {
        ++result.violations_found;
        ++result.violations_by_kind[ViolationKind::kNontermination];
        if (!result.violation) {
          result.violation = Violation{ViolationKind::kNontermination, path,
                                       "cycle in the state graph: a process "
                                       "can take steps forever"};
        }
        if (options.stop_at_first_violation) {
          aborted = true;
          break;
        }
      }
      path.pop_back();
      continue;
    }

    if (visited.contains(fp)) {
      path.pop_back();
      continue;
    }
    visited.insert(fp);
    ++result.states_visited;
    if (options.max_states != 0 && result.states_visited > options.max_states) {
      aborted = true;
      break;
    }

    if (child.terminal()) {
      const bool stop = record_terminal(child);
      path.pop_back();
      if (stop) {
        aborted = true;
        break;
      }
      continue;
    }

    auto choices = child.enabled();
    on_path.emplace(fp, path.size());
    stack.push_back(Frame{std::move(child), std::move(choices), 0});
  }

  result.complete = !aborted && stack.empty();
  return result;
}

SimWorld replay(const SimWorld& initial, const std::vector<Choice>& schedule) {
  SimWorld world = initial;
  for (const Choice& choice : schedule) world.apply(choice);
  return world;
}

LongestExecutionResult longest_execution(const SimWorld& initial,
                                         const ExploreOptions& options) {
  LongestExecutionResult result;

  // Post-order DFS computing, per state, the longest distance to any
  // terminal.  A back-edge to a state on the current path is a cycle:
  // some execution runs forever and no finite bound exists.
  struct Frame {
    SimWorld world;
    Fingerprint fp;
    std::vector<Choice> choices;
    std::size_t next = 0;
    std::uint64_t best = 0;
  };

  std::unordered_map<Fingerprint, std::uint64_t, FingerprintHash> memo;
  std::unordered_set<Fingerprint, FingerprintHash> on_path;
  std::vector<Frame> stack;

  const Fingerprint root_fp = fingerprint(initial.encode());
  result.states_visited = 1;
  if (initial.terminal()) {
    result.complete = true;
    return result;
  }
  stack.push_back(Frame{initial, root_fp, initial.enabled(), 0, 0});
  on_path.insert(root_fp);

  while (!stack.empty()) {
    Frame& frame = stack.back();
    if (frame.next >= frame.choices.size()) {
      memo.emplace(frame.fp, frame.best);
      on_path.erase(frame.fp);
      const std::uint64_t finished = frame.best;
      stack.pop_back();
      if (stack.empty()) {
        result.max_total_steps = finished;
        result.complete = true;
        return result;
      }
      Frame& parent = stack.back();
      parent.best = std::max(parent.best, finished + 1);
      continue;
    }

    const Choice choice = frame.choices[frame.next++];
    SimWorld child = frame.world;
    child.apply(choice);
    const Fingerprint fp = fingerprint(child.encode());

    if (on_path.contains(fp)) {
      result.bounded = false;  // cycle: unbounded execution exists
      return result;
    }
    if (const auto it = memo.find(fp); it != memo.end()) {
      frame.best = std::max(frame.best, it->second + 1);
      continue;
    }
    ++result.states_visited;
    if (options.max_states != 0 &&
        result.states_visited > options.max_states) {
      return result;  // incomplete
    }
    if (child.terminal()) {
      memo.emplace(fp, 0);
      frame.best = std::max(frame.best, std::uint64_t{1});
      continue;
    }
    auto choices = child.enabled();
    on_path.insert(fp);
    stack.push_back(Frame{std::move(child), fp, std::move(choices), 0, 0});
  }
  result.complete = true;
  return result;
}

ShortestViolationResult find_shortest_violation(const SimWorld& initial,
                                                const ExploreOptions& options) {
  ShortestViolationResult result;

  struct Node {
    SimWorld world;
    std::vector<Choice> path;
  };

  std::unordered_set<Fingerprint, FingerprintHash> visited;
  std::vector<Node> frontier;
  frontier.push_back({initial, {}});
  visited.insert(fingerprint(initial.encode()));
  result.states_visited = 1;

  auto check = [&](const Node& node) -> bool {
    if (!node.world.terminal()) return false;
    std::string detail;
    const auto kind = check_terminal(node.world, options, detail);
    if (kind) {
      result.violation = Violation{*kind, node.path, std::move(detail)};
      return true;
    }
    return false;
  };

  if (check(frontier.front())) return result;

  while (!frontier.empty()) {
    std::vector<Node> next;
    for (const Node& node : frontier) {
      for (const Choice& choice : node.world.enabled()) {
        SimWorld child = node.world;
        child.apply(choice);
        const Fingerprint fp = fingerprint(child.encode());
        if (!visited.insert(fp).second) continue;
        ++result.states_visited;
        if (options.max_states != 0 &&
            result.states_visited > options.max_states) {
          return result;  // incomplete, no violation found yet
        }
        Node child_node{std::move(child), node.path};
        child_node.path.push_back(choice);
        if (check(child_node)) {
          return result;  // BFS order ⇒ this witness is minimal
        }
        if (!child_node.world.terminal()) {
          next.push_back(std::move(child_node));
        }
      }
    }
    frontier = std::move(next);
  }
  result.complete = true;
  return result;
}

}  // namespace ff::sched
