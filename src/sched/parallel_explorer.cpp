#include "sched/parallel_explorer.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cassert>
#include <deque>
#include <map>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "sched/explore_common.hpp"
#include "sched/reduce.hpp"

namespace ff::sched {

namespace {

using detail::Fingerprint;
using detail::FingerprintHash;
using detail::check_terminal;

/// Dense 31-bit state ids: (per-shard index << shard_bits) | shard.
/// Bit 31 of the table's mapped value flags a terminal state so workers
/// can tell, on a duplicate hit, whether the target can sit on a cycle.
constexpr std::uint32_t kNoParent = 0xFFFFFFFFu;
constexpr std::uint32_t kTerminalFlag = 0x80000000u;
constexpr std::uint64_t kIdSpace = 0x7FFFFFFEull;

/// Canonical-slot sentinel for adversary steps / the root record.
constexpr std::uint8_t kNoSlot = 0xFF;

struct StateRecord {
  std::uint32_t parent;  ///< state id of the discovering parent
  Choice choice;         ///< choice applied at the parent to reach here
  /// Canonical slot of choice.pid in the discovering parent's block
  /// order.  Under symmetry the table identifies orbits, so a later walk
  /// may hold a different representative of `parent` than the discoverer
  /// did; the slot is orbit-invariant and resolves to an equivalent
  /// choice in ANY representative (see replay_path_from_root).
  std::uint8_t slot = kNoSlot;
};

/// One transition of the explored graph, kept for the post-pass cycle
/// detection (targets that are terminal are skipped — they cannot sit on
/// a cycle).  The choice is packed so an edge stays small.
struct Edge {
  std::uint32_t from;
  std::uint32_t to;
  std::uint32_t pid;
  std::uint32_t variant_fault;  ///< (fault_variant << 2) | (crash << 1) | fault
  std::uint8_t slot = kNoSlot;  ///< canonical slot of pid at `from`

  [[nodiscard]] Choice choice() const {
    return Choice{pid, (variant_fault & 1u) != 0, variant_fault >> 2,
                  (variant_fault & 2u) != 0};
  }
  [[nodiscard]] bool process_step() const { return pid != kAdversaryPid; }

  static std::uint32_t pack(const Choice& c) {
    return (c.fault_variant << 2) | (c.crash ? 2u : 0u) | (c.fault ? 1u : 0u);
  }
};

struct alignas(64) Shard {
  std::mutex mu;
  std::unordered_map<Fingerprint, std::uint32_t, FingerprintHash> table;
  std::vector<StateRecord> records;
  /// Godefroid stored sleep sets (canonical keys, sorted) for states of
  /// this shard that were inserted with a non-empty arrival sleep;
  /// absent entry = empty set.  Guarded by `mu`.
  std::unordered_map<std::uint32_t, std::vector<std::uint64_t>> sleep;
};

struct WorkItem {
  SimWorld world;
  std::uint32_t id;
  std::uint32_t depth;
  /// Arrival sleep set (pid-space, valid for `world`).
  std::vector<Choice> sleep;
  /// Non-empty ⇒ re-expansion of a revisited state: explore exactly
  /// these transitions instead of enabled() \ sleep.
  std::vector<Choice> explicit_trans;
};

struct alignas(64) WorkerQueue {
  std::mutex mu;
  std::deque<WorkItem> dq;
};

/// Per-worker accumulators, merged after the join (no sharing until then).
struct WorkerLocal {
  std::uint64_t terminal_states = 0;
  std::uint64_t violations_found = 0;
  std::uint64_t max_depth = 0;
  std::map<ViolationKind, std::uint64_t> by_kind;
  std::set<std::uint64_t> agreed_values;
  std::vector<Edge> edges;
  /// Reusable encoding scratch (workers never share these).
  StateEncoder encoder;
  EncodedState parent_enc;
  EncodedState child_enc;
  std::vector<std::uint32_t> parent_slots;
  std::vector<std::uint32_t> child_order;
  std::vector<std::uint32_t> child_slots;
  std::vector<std::uint64_t> child_keys;
  std::vector<std::uint64_t> missing_keys;
  std::vector<Footprint> footprints;
};

struct PendingViolation {
  std::uint32_t id;
  ViolationKind kind;
  std::string detail;
};

struct Ctx {
  const ExploreOptions* opts = nullptr;
  const SimWorld* root = nullptr;
  bool sym = false;
  bool por = false;
  std::uint32_t shard_bits = 0;
  std::uint32_t shard_mask = 0;
  std::uint32_t num_workers = 1;
  std::uint32_t chunk = 16;
  std::vector<Shard> shards;
  std::vector<WorkerQueue> queues;
  /// Items enqueued or being expanded; 0 ⇒ the frontier is drained.
  /// These three are checker-internal coordination state, not protocol
  /// state the checker models — the explorer runs *outside* the traced
  /// object layer by construction.
  // ff-lint: allow(R1): checker-internal work-stealing frontier counter
  std::atomic<std::int64_t> outstanding{0};
  // ff-lint: allow(R1): checker-internal state-census counter, not modeled
  std::atomic<std::uint64_t> states{0};
  // ff-lint: allow(R1): checker-internal stop flag, never protocol-visible
  std::atomic<bool> abort{false};
  std::mutex violation_mu;
  std::optional<PendingViolation> pending;

  [[nodiscard]] std::uint32_t shard_of(const Fingerprint& fp) const {
    return static_cast<std::uint32_t>(fp.a) & shard_mask;
  }
  [[nodiscard]] const StateRecord& record(std::uint32_t id) const {
    return shards[id & shard_mask].records[id >> shard_bits];
  }
};

struct InternResult {
  std::uint32_t stored = 0;
  bool inserted = false;
};

/// Inserts (or finds) the state behind `fp`.  Returns the mapped value
/// (id | terminal flag) and whether this call inserted it.  When POR is
/// active, `arrival_keys` (sorted canonical sleep keys the state is
/// reached with) is stored on insert; on a duplicate hit the Godefroid
/// state-matching update runs: `missing` receives stored \ arrival (the
/// transitions pruned under an assumption this arrival invalidates) and
/// the stored set shrinks to the intersection.
InternResult intern(Ctx& ctx, const Fingerprint& fp, bool terminal,
                    std::uint32_t parent, const Choice& choice,
                    std::uint8_t slot,
                    const std::vector<std::uint64_t>& arrival_keys,
                    std::vector<std::uint64_t>* missing) {
  const std::uint32_t shard_idx = ctx.shard_of(fp);
  Shard& shard = ctx.shards[shard_idx];
  std::lock_guard<std::mutex> g(shard.mu);
  const auto [it, inserted] = shard.table.try_emplace(fp, 0u);
  if (inserted) {
    const auto local_idx = static_cast<std::uint32_t>(shard.records.size());
    if ((std::uint64_t{local_idx} << ctx.shard_bits) > kIdSpace) {
      // Id space exhausted (≥ 2^31 states in one shard's stripe) — abort
      // as an incomplete run rather than corrupt ids.
      ctx.abort.store(true, std::memory_order_relaxed);
    }
    std::uint32_t stored = (local_idx << ctx.shard_bits) | shard_idx;
    if (terminal) stored |= kTerminalFlag;
    shard.records.push_back(StateRecord{parent, choice, slot});
    if (ctx.por && !arrival_keys.empty()) {
      shard.sleep.emplace(local_idx, arrival_keys);
    }
    it->second = stored;
    return {stored, true};
  }
  if (ctx.por && missing != nullptr) {
    missing->clear();
    const std::uint32_t local_idx = (it->second & ~kTerminalFlag) >>
                                    ctx.shard_bits;
    const auto sit = shard.sleep.find(local_idx);
    if (sit != shard.sleep.end()) {
      std::set_difference(sit->second.begin(), sit->second.end(),
                          arrival_keys.begin(), arrival_keys.end(),
                          std::back_inserter(*missing));
      if (!missing->empty()) {
        std::vector<std::uint64_t> inter;
        std::set_intersection(sit->second.begin(), sit->second.end(),
                              arrival_keys.begin(), arrival_keys.end(),
                              std::back_inserter(inter));
        if (inter.empty()) {
          shard.sleep.erase(sit);
        } else {
          sit->second = std::move(inter);
        }
      }
    }
  }
  return {it->second, false};
}

void enqueue(Ctx& ctx, std::uint32_t wid, WorkItem&& item) {
  ctx.outstanding.fetch_add(1, std::memory_order_acq_rel);
  WorkerQueue& self = ctx.queues[wid];
  std::lock_guard<std::mutex> g(self.mu);
  self.dq.push_back(std::move(item));
}

void expand(Ctx& ctx, std::uint32_t wid, WorkItem& item, WorkerLocal& local) {
  // Transition list: enabled() minus the arrival sleep, or — for a
  // re-expansion of a revisited state — exactly the stored-minus-arrival
  // transitions the original visit pruned.
  std::vector<Choice> trans;
  if (!item.explicit_trans.empty()) {
    trans = std::move(item.explicit_trans);
  } else {
    for (const Choice& c : item.world.enabled()) {
      if (ctx.por && std::find(item.sleep.begin(), item.sleep.end(), c) !=
                         item.sleep.end()) {
        continue;  // asleep: an equivalent interleaving is explored
      }
      trans.push_back(c);
    }
  }

  // Footprints (at item.world) of the arrival sleep and the transition
  // list, for the child-sleep computation.
  if (ctx.por) {
    local.footprints.clear();
    for (const Choice& s : item.sleep) {
      local.footprints.push_back(footprint_of(item.world, s));
    }
    for (const Choice& c : trans) {
      local.footprints.push_back(footprint_of(item.world, c));
    }
  }
  // Canonical slots of the parent representative, for record/edge slots.
  if (ctx.sym) {
    local.encoder.encode(item.world, local.parent_enc);
    canonical_slots(local.parent_enc, local.parent_slots);
  }
  const auto slot_of = [&](const Choice& c) -> std::uint8_t {
    if (!ctx.sym || c.pid == kAdversaryPid) return kNoSlot;
    return static_cast<std::uint8_t>(local.parent_slots[c.pid]);
  };

  std::vector<Choice> child_sleep;
  const std::vector<std::uint32_t> kIdentity;
  for (std::size_t ti = 0; ti < trans.size(); ++ti) {
    if (ctx.abort.load(std::memory_order_relaxed)) return;
    const Choice& choice = trans[ti];
    SimWorld child = item.world;
    child.apply(choice);
    local.encoder.encode(child, local.child_enc);
    const Fingerprint fp = fingerprint_state(local.child_enc, ctx.sym);
    const bool child_terminal = child.terminal();
    local.max_depth =
        std::max<std::uint64_t>(local.max_depth, item.depth + 1ull);

    // Sleep set the child arrives with (Godefroid): still-independent
    // members of the arrival sleep plus earlier-explored transitions
    // independent of the chosen step — with canonical keys so stored
    // sets compare across orbit representatives.
    child_sleep.clear();
    local.child_keys.clear();
    if (ctx.por) {
      const Footprint fc = local.footprints[item.sleep.size() + ti];
      for (std::size_t i = 0; i < item.sleep.size(); ++i) {
        if (independent(item.sleep[i], local.footprints[i], choice, fc)) {
          child_sleep.push_back(item.sleep[i]);
        }
      }
      for (std::size_t j = 0; j < ti; ++j) {
        if (independent(trans[j], local.footprints[item.sleep.size() + j],
                        choice, fc)) {
          child_sleep.push_back(trans[j]);
        }
      }
      if (!child_sleep.empty()) {
        local.child_slots.clear();
        if (ctx.sym) canonical_slots(local.child_enc, local.child_slots);
        for (const Choice& s : child_sleep) {
          local.child_keys.push_back(
              sleep_key(s, ctx.sym ? local.child_slots : kIdentity));
        }
        std::sort(local.child_keys.begin(), local.child_keys.end());
      }
    }

    const InternResult in =
        intern(ctx, fp, child_terminal, item.id, choice, slot_of(choice),
               local.child_keys, ctx.por ? &local.missing_keys : nullptr);
    const bool target_terminal = (in.stored & kTerminalFlag) != 0;
    const std::uint32_t child_id = in.stored & ~kTerminalFlag;

    if (!target_terminal) {
      local.edges.push_back(Edge{item.id, child_id, choice.pid,
                                 Edge::pack(choice), slot_of(choice)});
    }
    if (!in.inserted) {
      if (ctx.por && !local.missing_keys.empty() && !target_terminal) {
        // Re-expand the revisited state along exactly the transitions its
        // first visit pruned under a sleep assumption this arrival
        // invalidates.  `child` IS a representative of that state (under
        // symmetry possibly a different one than the discoverer held —
        // canonical keys make the sets comparable, and resolving against
        // this representative's own order yields equivalent transitions).
        local.child_order.clear();
        if (ctx.sym) canonical_order(local.child_enc, local.child_order);
        std::vector<Choice> missing;
        missing.reserve(local.missing_keys.size());
        for (const std::uint64_t key : local.missing_keys) {
          missing.push_back(resolve_sleep_key(key, local.child_order));
        }
        enqueue(ctx, wid,
                WorkItem{std::move(child), child_id, item.depth + 1,
                         child_sleep, std::move(missing)});
      }
      continue;
    }

    const std::uint64_t n =
        ctx.states.fetch_add(1, std::memory_order_relaxed) + 1;
    if ((ctx.opts->max_states != 0 && n > ctx.opts->max_states) ||
        n > kIdSpace) {
      ctx.abort.store(true, std::memory_order_relaxed);
      return;
    }

    if (child_terminal) {
      ++local.terminal_states;
      std::string why;
      if (const auto kind = check_terminal(child, *ctx.opts, why)) {
        ++local.violations_found;
        ++local.by_kind[*kind];
        {
          std::lock_guard<std::mutex> g(ctx.violation_mu);
          if (!ctx.pending) {
            ctx.pending = PendingViolation{child_id, *kind, std::move(why)};
          }
        }
        if (ctx.opts->stop_at_first_violation) {
          ctx.abort.store(true, std::memory_order_relaxed);
          return;
        }
      } else if (const auto agreed = detail::agreed_value(child)) {
        local.agreed_values.insert(*agreed);
      }
    } else {
      enqueue(ctx, wid, WorkItem{std::move(child), child_id, item.depth + 1,
                                 child_sleep, {}});
    }
  }
}

void worker_loop(Ctx& ctx, std::uint32_t wid, WorkerLocal& local) {
  WorkerQueue& self = ctx.queues[wid];
  // Terminates by quiescence: every enqueue increments `outstanding` and
  // every completed expansion decrements it, so outstanding == 0 with an
  // empty deque is final; `expand` honors the max_states cap, bounding
  // total enqueues.  A BudgetMeter here would duplicate those caps and
  // put one more shared counter in the steal-path hot loop.
  // ff-lint: allow(R4): quiescence-terminated; enqueues capped by max_states
  for (;;) {
    if (ctx.abort.load(std::memory_order_relaxed)) return;

    std::optional<WorkItem> item;
    {
      std::lock_guard<std::mutex> g(self.mu);
      if (!self.dq.empty()) {
        item.emplace(std::move(self.dq.back()));
        self.dq.pop_back();
      }
    }
    if (!item) {
      // Steal a chunk from the oldest (front, closest-to-root) end of a
      // victim's deque: old frontier states head larger subtrees.
      for (std::uint32_t i = 1; i <= ctx.num_workers && !item; ++i) {
        WorkerQueue& victim = ctx.queues[(wid + i) % ctx.num_workers];
        if (&victim == &self) continue;
        // Never hold two deque mutexes at once (two thieves targeting
        // each other would form a lock cycle): drain the chunk into a
        // local buffer under the victim's lock, then re-lock our own.
        std::vector<WorkItem> chunk;
        {
          std::lock_guard<std::mutex> g(victim.mu);
          if (victim.dq.empty()) continue;
          const std::size_t take = std::min<std::size_t>(
              std::max<std::uint32_t>(1, ctx.chunk),
              (victim.dq.size() + 1) / 2);
          item.emplace(std::move(victim.dq.front()));
          victim.dq.pop_front();
          for (std::size_t k = 1; k < take; ++k) {
            chunk.push_back(std::move(victim.dq.front()));
            victim.dq.pop_front();
          }
        }
        if (!chunk.empty()) {
          std::lock_guard<std::mutex> g(self.mu);
          for (auto& stolen : chunk) {
            self.dq.push_back(std::move(stolen));
          }
        }
      }
    }
    if (!item) {
      if (ctx.outstanding.load(std::memory_order_acquire) == 0) return;
      std::this_thread::yield();
      continue;
    }
    expand(ctx, wid, *item, local);
    ctx.outstanding.fetch_sub(1, std::memory_order_acq_rel);
  }
}

/// Discovery-tree record chain root → `id` (in forward order).
std::vector<const StateRecord*> record_chain(const Ctx& ctx,
                                             std::uint32_t id) {
  std::vector<const StateRecord*> chain;
  // Each hop strictly decreases discovery-tree depth, so the walk is
  // bounded by the depth of `id` — no open-ended iteration.
  for (const StateRecord* rec = &ctx.record(id); rec->parent != kNoParent;
       rec = &ctx.record(rec->parent)) {
    chain.push_back(rec);
  }
  std::reverse(chain.begin(), chain.end());
  return chain;
}

/// Choices along the discovery tree from the root to `id`, resolved into
/// a directly replayable schedule.  Without symmetry the recorded
/// choices replay verbatim.  Under symmetry each record's choice was
/// taken at the REPRESENTATIVE the discoverer held, which may differ
/// from the representative this walk reaches — so the choice is
/// re-resolved through its canonical slot against the walk's own world
/// (equal blocks are interchangeable, so any tie-break is equivalent).
/// `world_out`, when non-null, receives the world after the walk.
std::vector<Choice> path_from_root(const Ctx& ctx, std::uint32_t id,
                                   SimWorld* world_out = nullptr) {
  const auto chain = record_chain(ctx, id);
  std::vector<Choice> out;
  out.reserve(chain.size());
  if (!ctx.sym && world_out == nullptr) {
    for (const StateRecord* rec : chain) out.push_back(rec->choice);
    return out;
  }
  SimWorld world = *ctx.root;
  StateEncoder encoder;
  EncodedState enc;
  std::vector<std::uint32_t> order;
  for (const StateRecord* rec : chain) {
    Choice c = rec->choice;
    if (ctx.sym && rec->slot != kNoSlot) {
      encoder.encode(world, enc);
      canonical_order(enc, order);
      c.pid = order[rec->slot];
    }
    out.push_back(c);
    world.apply(c);
  }
  if (world_out != nullptr) *world_out = std::move(world);
  return out;
}

/// Post-pass nontermination detection over the recorded transition edges:
/// Tarjan SCCs, then every process-step edge internal to a cyclic SCC is
/// a wait-freedom violation (inside an SCC, every internal edge lies on a
/// cycle).  Returns the count and, when one exists, a witness schedule
/// root → u, u → v (the process edge), v → … → u (a path inside the SCC),
/// whose replay revisits the state after the root → u prefix.  Under
/// symmetry the lap returns to an orbit-mate of u; close_symmetric_cycle
/// extends it with permuted laps until the encoding closes exactly.
struct CycleScan {
  std::uint64_t process_cycle_edges = 0;
  std::optional<std::vector<Choice>> witness;
};

CycleScan scan_for_cycles(const Ctx& ctx,
                          const std::vector<WorkerLocal>& locals) {
  CycleScan scan;

  // Dense node indexing: shard-base prefix sums over the record arrays.
  const auto num_shards = static_cast<std::uint32_t>(ctx.shards.size());
  std::vector<std::uint64_t> shard_base(num_shards + 1, 0);
  for (std::uint32_t s = 0; s < num_shards; ++s) {
    shard_base[s + 1] = shard_base[s] + ctx.shards[s].records.size();
  }
  const auto n = static_cast<std::uint32_t>(shard_base[num_shards]);
  const auto dense = [&](std::uint32_t id) {
    return static_cast<std::uint32_t>(shard_base[id & ctx.shard_mask] +
                                      (id >> ctx.shard_bits));
  };

  std::uint64_t num_edges = 0;
  for (const WorkerLocal& l : locals) num_edges += l.edges.size();
  if (num_edges == 0 || n == 0) return scan;

  // CSR adjacency of edge indices into the concatenated edge list.
  std::vector<const Edge*> all_edges;
  all_edges.reserve(num_edges);
  for (const WorkerLocal& l : locals) {
    for (const Edge& e : l.edges) all_edges.push_back(&e);
  }
  std::vector<std::uint64_t> offset(n + 1, 0);
  for (const Edge* e : all_edges) ++offset[dense(e->from) + 1];
  for (std::uint32_t v = 0; v < n; ++v) offset[v + 1] += offset[v];
  std::vector<std::uint32_t> csr(num_edges);
  {
    std::vector<std::uint64_t> cursor = offset;
    for (std::uint32_t e = 0; e < num_edges; ++e) {
      csr[cursor[dense(all_edges[e]->from)]++] = e;
    }
  }

  // Iterative Tarjan.
  constexpr std::uint32_t kUndef = 0xFFFFFFFFu;
  std::vector<std::uint32_t> index(n, kUndef), lowlink(n, kUndef);
  std::vector<std::uint32_t> scc_of(n, kUndef);
  std::vector<bool> on_stack(n, false);
  std::vector<std::uint32_t> stack;
  std::vector<std::uint32_t> scc_size;
  struct Frame {
    std::uint32_t v;
    std::uint64_t edge;
  };
  std::vector<Frame> frames;
  std::uint32_t next_index = 0;

  for (std::uint32_t root = 0; root < n; ++root) {
    if (index[root] != kUndef) continue;
    frames.push_back({root, offset[root]});
    index[root] = lowlink[root] = next_index++;
    stack.push_back(root);
    on_stack[root] = true;
    while (!frames.empty()) {
      Frame& f = frames.back();
      if (f.edge < offset[f.v + 1]) {
        const std::uint32_t w = dense(all_edges[csr[f.edge++]]->to);
        if (index[w] == kUndef) {
          index[w] = lowlink[w] = next_index++;
          stack.push_back(w);
          on_stack[w] = true;
          frames.push_back({w, offset[w]});
        } else if (on_stack[w]) {
          lowlink[f.v] = std::min(lowlink[f.v], index[w]);
        }
        continue;
      }
      if (lowlink[f.v] == index[f.v]) {
        const auto scc_id = static_cast<std::uint32_t>(scc_size.size());
        std::uint32_t size = 0;
        // Pops at most |stack| entries and f.v is guaranteed on the
        // stack, so the loop is bounded by its own condition.
        std::uint32_t w = kNoParent;
        do {
          w = stack.back();
          stack.pop_back();
          on_stack[w] = false;
          scc_of[w] = scc_id;
          ++size;
        } while (w != f.v);
        scc_size.push_back(size);
      }
      const std::uint32_t low = lowlink[f.v];
      frames.pop_back();
      if (!frames.empty()) {
        lowlink[frames.back().v] = std::min(lowlink[frames.back().v], low);
      }
    }
  }

  // Count cycle-forming process edges; keep one for the witness.
  std::optional<std::uint32_t> chosen;
  for (std::uint32_t e = 0; e < num_edges; ++e) {
    const Edge& edge = *all_edges[e];
    const std::uint32_t du = dense(edge.from), dv = dense(edge.to);
    const bool cyclic =
        scc_of[du] == scc_of[dv] && (scc_size[scc_of[du]] > 1 || du == dv);
    if (cyclic && edge.process_step()) {
      ++scan.process_cycle_edges;
      if (!chosen) chosen = e;
    }
  }
  if (!chosen) return scan;

  // Witness: root → u, the process edge u → v, then BFS v → … → u kept
  // inside the SCC.
  const Edge& key = *all_edges[*chosen];
  const std::uint32_t du = dense(key.from), dv = dense(key.to);
  // The lap's edge descriptors in forward order: u → v, then v → … → u.
  std::vector<const Edge*> lap_edges{&key};
  if (du != dv) {
    std::vector<std::uint32_t> pred(n, kUndef);  // predecessor edge index
    std::vector<std::uint32_t> queue{dv};
    pred[dv] = *chosen;  // mark discovered (never dereferenced for dv)
    bool found = false;
    for (std::size_t head = 0; head < queue.size() && !found; ++head) {
      const std::uint32_t x = queue[head];
      for (std::uint64_t i = offset[x]; i < offset[x + 1]; ++i) {
        const std::uint32_t e = csr[i];
        const std::uint32_t y = dense(all_edges[e]->to);
        if (scc_of[y] != scc_of[du] || pred[y] != kUndef) continue;
        pred[y] = e;
        if (y == du) {
          found = true;
          break;
        }
        queue.push_back(y);
      }
    }
    assert(found && "SCC is strongly connected: a v→u path must exist");
    std::vector<const Edge*> back;
    for (std::uint32_t cur = du; cur != dv;) {
      const Edge* e = all_edges[pred[cur]];
      back.push_back(e);
      cur = dense(e->from);
    }
    lap_edges.insert(lap_edges.end(), back.rbegin(), back.rend());
  }

  SimWorld at_u = *ctx.root;
  std::vector<Choice> witness = path_from_root(ctx, key.from, &at_u);
  // Resolve the lap's choices hop by hop against the walked
  // representatives (identity when symmetry is off).
  std::vector<Choice> lap;
  lap.reserve(lap_edges.size());
  {
    SimWorld world = at_u;
    StateEncoder encoder;
    EncodedState enc;
    std::vector<std::uint32_t> order;
    for (const Edge* e : lap_edges) {
      Choice c = e->choice();
      if (ctx.sym && e->slot != kNoSlot) {
        encoder.encode(world, enc);
        canonical_order(enc, order);
        c.pid = order[e->slot];
      }
      lap.push_back(c);
      world.apply(c);
    }
  }
  if (ctx.sym) {
    if (auto closed = close_symmetric_cycle(at_u, lap)) {
      witness.insert(witness.end(), closed->begin(), closed->end());
    } else {
      witness.insert(witness.end(), lap.begin(), lap.end());
    }
  } else {
    witness.insert(witness.end(), lap.begin(), lap.end());
  }
  scan.witness = std::move(witness);
  return scan;
}

}  // namespace

ExploreResult parallel_explore(const SimWorld& initial,
                               const ParallelExploreOptions& options) {
  ExploreResult result;
  const ExploreOptions& opts = options.explore;

  // The prune counters are shared by every SimWorld copy the workers
  // make (WorkItem worlds, expansion children), so this search's
  // contribution is the delta over the initial snapshot.
  const std::uint64_t checks0 = initial.immunity_checks();
  const std::uint64_t skips0 = initial.immunity_skips();

  // Terminal root: identical to the sequential special case.
  if (initial.terminal()) {
    result.states_visited = 1;
    result.terminal_states = 1;
    std::string why;
    if (const auto kind = check_terminal(initial, opts, why)) {
      result.violations_found = 1;
      result.violations_by_kind[*kind] = 1;
      result.violation = Violation{*kind, {}, std::move(why)};
    } else if (const auto agreed = detail::agreed_value(initial)) {
      result.agreed_values.insert(*agreed);
    }
    result.complete =
        result.violations_found == 0 || !opts.stop_at_first_violation;
    return result;
  }

  Ctx ctx;
  ctx.opts = &opts;
  ctx.root = &initial;
  ctx.sym = opts.symmetry_reduction && initial.processes_symmetric();
  ctx.por = opts.sleep_sets;
  const std::uint32_t shards =
      std::bit_ceil(std::max<std::uint32_t>(1, options.shard_count));
  ctx.shard_bits = static_cast<std::uint32_t>(std::countr_zero(shards));
  ctx.shard_mask = shards - 1;
  std::uint32_t workers = options.num_threads != 0
                              ? options.num_threads
                              : std::thread::hardware_concurrency();
  ctx.num_workers = std::max<std::uint32_t>(1, workers);
  ctx.chunk = std::max<std::uint32_t>(1, options.chunk_size);
  ctx.shards = std::vector<Shard>(shards);
  ctx.queues = std::vector<WorkerQueue>(ctx.num_workers);

  Fingerprint root_fp;
  {
    StateEncoder encoder;
    EncodedState enc;
    encoder.encode(initial, enc);
    root_fp = fingerprint_state(enc, ctx.sym);
  }
  const InternResult root_in =
      intern(ctx, root_fp, false, kNoParent, Choice{}, kNoSlot, {}, nullptr);
  assert(root_in.inserted);
  ctx.states.store(1, std::memory_order_relaxed);
  ctx.outstanding.store(1, std::memory_order_relaxed);
  ctx.queues[0].dq.push_back(WorkItem{initial, root_in.stored, 0, {}, {}});

  std::vector<WorkerLocal> locals(ctx.num_workers);
  {
    std::vector<std::thread> threads;
    threads.reserve(ctx.num_workers);
    for (std::uint32_t wid = 0; wid < ctx.num_workers; ++wid) {
      threads.emplace_back(
          [&ctx, wid, &locals] { worker_loop(ctx, wid, locals[wid]); });
    }
    for (auto& t : threads) t.join();
  }

  const bool aborted = ctx.abort.load(std::memory_order_relaxed);
  result.states_visited = ctx.states.load(std::memory_order_relaxed);
  for (const WorkerLocal& l : locals) {
    result.terminal_states += l.terminal_states;
    result.violations_found += l.violations_found;
    result.max_depth = std::max(result.max_depth, l.max_depth);
    for (const auto& [kind, count] : l.by_kind) {
      result.violations_by_kind[kind] += count;
    }
    result.agreed_values.insert(l.agreed_values.begin(),
                                l.agreed_values.end());
  }
  if (ctx.pending) {
    result.violation =
        Violation{ctx.pending->kind, path_from_root(ctx, ctx.pending->id),
                  std::move(ctx.pending->detail)};
  }

  // Cycle pass — only meaningful when the frontier fully drained (an
  // aborted run has not seen the whole graph, exactly like a capped or
  // first-violation-stopped sequential DFS).
  if (!aborted) {
    const CycleScan scan = scan_for_cycles(ctx, locals);
    if (scan.process_cycle_edges > 0) {
      const std::uint64_t reported =
          opts.stop_at_first_violation ? 1 : scan.process_cycle_edges;
      result.violations_found += reported;
      result.violations_by_kind[ViolationKind::kNontermination] += reported;
      if (!result.violation && scan.witness) {
        result.violation = Violation{
            ViolationKind::kNontermination, std::move(*scan.witness),
            "cycle in the state graph: a process can take steps forever"};
      }
    }
  }

  result.complete =
      !aborted &&
      !(opts.stop_at_first_violation && result.violations_found > 0);
  result.immunity_checks = initial.immunity_checks() - checks0;
  result.immunity_skips = initial.immunity_skips() - skips0;
  // End-of-run capacity census of the monotone search structures.  The
  // unordered_map node cost is estimated (key + value + next pointer,
  // rounded to the allocator's 32-byte bin) — comparable across runs,
  // which is all spill-watermark tuning needs.
  for (const Shard& shard : ctx.shards) {
    result.peak_bytes += shard.table.size() * 32 +
                         shard.table.bucket_count() * sizeof(void*) +
                         shard.records.capacity() * sizeof(StateRecord);
    for (const auto& [id, keys] : shard.sleep) {
      result.peak_bytes += 48 + keys.capacity() * 8;
      (void)id;
    }
  }
  for (const WorkerLocal& l : locals) {
    result.peak_bytes += l.edges.capacity() * sizeof(Edge);
  }
  return result;
}

}  // namespace ff::sched
