// Batched owner-computes frontier explorer — engine internals.
//
// Data flow per BFS wave (see frontier_explorer.hpp for the contract):
//
//   expand:  each worker walks the wave items of the shards it OWNS and
//            enumerates every enabled Choice by mirroring
//            SimWorld::enabled()/apply() over the item's compact words
//            (shared raws + hash-consed machine lanes) — no SimWorld
//            copies on the hot path.  Successor items are routed: own
//            shard → local candidate buffer, foreign shard → SPSC ring.
//   quiesce: expansion counter + ring drain (a producer's pushes happen
//            before its counter decrement, so one empty sweep after the
//            counter hits zero is conclusive).
//   dedup:   each owner sorts its candidates by fingerprint, merge-joins
//            them against its spilled runs, then probes its private
//            FlatFpMap — single writer, no locks.  Novel states join the
//            next wave; novel terminals are censused on the spot.
//   account: worker 0 sums the next wave, takes the peak-memory census
//            and decides stop/spill for everyone (spin barriers carry
//            the happens-before edges).
//
// Machine stepping is memoized per (lane, returned-word) transition;
// memo misses are gathered into ONE proto::StatePool per block and
// stepped with a single batch_deliver sweep (the perf point of this
// engine), falling back to scalar StepMachine stepping when the program
// has no generated kernels.  Crash branches are rare next to deliveries,
// so crashed lanes are rebuilt one at a time through IrMachine's
// crash-restore constructor (or clone()+crash() on the scalar path).
#include "sched/frontier_explorer.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cassert>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "proto/fingerprint.hpp"
#include "proto/genapi.hpp"
#include "proto/machine.hpp"
#include "proto/pool.hpp"
#include "runtime/budget.hpp"
#include "sched/explore_common.hpp"
#include "sched/reduce.hpp"
#include "util/handoff.hpp"
#include "util/rng.hpp"
#include "util/spin_barrier.hpp"

namespace ff::sched {

namespace {

using detail::Fingerprint;
using detail::FlatFpMap;
using detail::FpFold;

constexpr std::uint32_t kNoParent = 0xFFFFFFFFu;
constexpr std::uint32_t kTerminalFlag = 0x80000000u;
constexpr std::uint64_t kIdSpace = 0x7FFFFFFEull;
constexpr std::uint8_t kNoSlot = 0xFF;
constexpr std::uint32_t kNoLane = 0xFFFFFFFFu;

/// Choice encoding shared by items, records and edges.
constexpr std::uint8_t kChoiceFault = 1;
constexpr std::uint8_t kChoiceCrash = 2;
/// Record-only: the state behind this record is terminal.
constexpr std::uint8_t kRecTerminal = 4;

/// Items per expansion block between pend flushes / ring drains.
constexpr std::size_t kExpandBlock = 64;
/// Records per SPSC ring (per producer/consumer pair).
constexpr std::size_t kRingRecords = 512;
/// Records per spill-run read buffer during merge-join / binary search.
constexpr std::size_t kRunBuf = 1024;

const std::uint64_t kBottomRaw = model::Value::bottom().raw();

[[nodiscard]] bool fp_less(const Fingerprint& x, const Fingerprint& y) {
  return x.a < y.a || (x.a == y.a && x.b < y.b);
}

// ---------------------------------------------------------------------------
// Wave items.
//
// One candidate/wave state is a flat block of `stride` words:
//   [0] fp.a          [1] fp.b
//   [2] parent_fp.a   [3] parent_fp.b
//   [4] pid | variant << 32                (discovering choice)
//   [5] parent_id | flags << 32 | slot << 40
//   [6] depth | own_id << 32               (own_id written on accept)
//   [7 .. 7+S)        shared raws, exactly SimWorld::encode_shared()
//   [7+S .. 7+S+n)    per-pid: lane | crashes << 32 | killed << 48
// ---------------------------------------------------------------------------

constexpr std::size_t kHeaderWords = 7;
constexpr std::size_t kItFpA = 0, kItFpB = 1, kItParA = 2, kItParB = 3;
constexpr std::size_t kItChoice = 4, kItParent = 5, kItDepth = 6;

[[nodiscard]] std::uint32_t item_lane(std::uint64_t w) {
  return static_cast<std::uint32_t>(w);
}
[[nodiscard]] std::uint32_t item_crashes(std::uint64_t w) {
  return static_cast<std::uint32_t>((w >> 32) & 0xFFFFu);
}
[[nodiscard]] bool item_killed(std::uint64_t w) {
  return ((w >> 48) & 1u) != 0;
}
[[nodiscard]] std::uint64_t pack_pid_word(std::uint32_t lane,
                                          std::uint32_t crashes, bool killed) {
  return std::uint64_t{lane} | (std::uint64_t{crashes & 0xFFFFu} << 32) |
         (std::uint64_t{killed ? 1u : 0u} << 48);
}

/// Census record: the in-memory back-pointer entry AND the on-disk spill
/// format (sorted by fp within a run).  Fixed 56-byte POD so runs can be
/// written/read as flat arrays and binary-searched by seek.
struct Record {
  Fingerprint fp;
  Fingerprint parent_fp;
  std::uint32_t seq = 0;        ///< per-shard sequence number
  std::uint32_t parent_id = 0;  ///< global id of the discovering parent
  std::uint32_t pid = 0;
  std::uint32_t variant = 0;
  std::uint32_t depth = 0;
  std::uint8_t flags = 0;  ///< kChoiceFault | kChoiceCrash | kRecTerminal
  std::uint8_t slot = kNoSlot;
  std::uint16_t pad = 0;
};
static_assert(sizeof(Record) == 56 && std::is_trivially_copyable_v<Record>);

[[nodiscard]] Choice record_choice(std::uint32_t pid, std::uint32_t variant,
                                   std::uint8_t flags) {
  return Choice{pid, (flags & kChoiceFault) != 0, variant,
                (flags & kChoiceCrash) != 0};
}

/// One explored transition, kept for the post-pass cycle scan (edges to
/// terminal targets are skipped — they cannot sit on a cycle).
struct FEdge {
  std::uint32_t from;
  std::uint32_t to;
  std::uint32_t pid;
  std::uint32_t variant;
  std::uint8_t flags;
  std::uint8_t slot;

  [[nodiscard]] Choice choice() const {
    return record_choice(pid, variant, flags);
  }
  [[nodiscard]] bool process_step() const { return pid != kAdversaryPid; }
};

// ---------------------------------------------------------------------------
// Lane arena: hash-consed machine states.
//
// A StepMachine's observable behaviour is a function of its encoded
// block (plus its pid when the program reads it) — the same layout-
// determinism the explorers' state memoization already relies on — so
// machine states are interned on (pid, encode words) and every stepping
// transition is memoized per (lane, returned word).  Lane payloads live
// in fixed-size chunks behind atomic chunk pointers: writers append
// under one mutex and publish the chunk with a release store; readers
// acquire-load the pointer and then read lane slots race-free, because a
// lane index only ever reaches another worker through a mutex, ring or
// barrier edge that orders the slot writes before the read.
// ---------------------------------------------------------------------------

constexpr std::size_t kLaneChunkBits = 12;
constexpr std::size_t kLaneChunk = std::size_t{1} << kLaneChunkBits;
constexpr std::size_t kMaxLaneChunks = std::size_t{1} << 14;

struct LaneMeta {
  PendingOp op;  ///< kNone when halted
  std::uint64_t decision = 0;
  objects::ProcessId pid = 0;
  bool done = false;
  bool can_crash = false;
};

struct DeliverMiss {
  std::uint32_t lane;
  std::uint64_t returned;
};

/// FlatFpMap slots entries at fp.a's low bits directly, which is only
/// sound for well-mixed values; lane ids are tiny sequential integers,
/// so memo keys run the pair through the SplitMix64 finalizer first.
/// Injective: equal b forces equal returned, and for fixed returned
/// mix64 is a bijection of (lane + 1) — distinct pairs cannot collide.
[[nodiscard]] Fingerprint memo_key(std::uint32_t lane,
                                   std::uint64_t returned) noexcept {
  return Fingerprint{util::mix64((std::uint64_t{lane} + 1) ^
                                 (returned * 0x9E3779B97F4A7C15ULL)),
                     returned};
}

class LaneArena {
 public:
  LaneArena(const MachineFactory& factory, std::uint32_t batch_lanes)
      : factory_(&factory) {
    if (const auto* irf = dynamic_cast<const proto::IrMachineFactory*>(
            &factory)) {
      program_ = irf->program();
    } else if (const auto* gmf =
                   dynamic_cast<const proto::gen::GenMachineFactory*>(
                       &factory)) {
      program_ = gmf->program();
    }
    if (program_ != nullptr && !program_->uses_queue() &&
        proto::gen::find_generated(proto::program_fingerprint(*program_)) !=
            nullptr) {
      num_locals_ = program_->locals().size();
      row_words_ = num_locals_ + 1;  // full local image + pause pc
      staging_ = std::make_unique<proto::StatePool>(
          program_, std::max<std::uint32_t>(1, batch_lanes));
      returned_.resize(staging_->capacity(), 0);
      locals_scratch_.resize(num_locals_, 0);
      // Hoisted ONCE: whether crashed lanes re-enter the program (the
      // IR has a recovery label).  Checked per resolved lane below.
      crash_reentry_ = program_->has_recovery();
    }
  }

  LaneArena(const LaneArena&) = delete;
  LaneArena& operator=(const LaneArena&) = delete;

  ~LaneArena() {
    for (auto& c : row_chunks_) delete[] c.load(std::memory_order_relaxed);
    for (auto& c : meta_chunks_) delete[] c.load(std::memory_order_relaxed);
    for (auto& c : machine_chunks_) {
      delete[] c.load(std::memory_order_relaxed);
    }
  }

  [[nodiscard]] bool generated() const noexcept {
    return staging_ != nullptr;
  }
  [[nodiscard]] bool overflowed() const noexcept {
    return overflow_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] const LaneMeta& meta(std::uint32_t lane) const {
    return meta_chunks_[lane >> kLaneChunkBits].load(
        std::memory_order_acquire)[lane & (kLaneChunk - 1)];
  }

  /// Appends the lane's encode() words — bit-identical to the scalar
  /// machine's encode(), which is what makes item fingerprints equal to
  /// the sequential explorer's.
  void encode_lane(std::uint32_t lane, std::vector<std::uint64_t>& out) const {
    if (staging_ != nullptr) {
      const std::uint64_t* row = row_of(lane);
      for (const std::uint16_t l : program_->layout()) out.push_back(row[l]);
      return;
    }
    machine_of(lane)->encode(out);
  }

  /// Interns the initial machine state of (pid, input).
  [[nodiscard]] std::uint32_t root_lane(objects::ProcessId pid,
                                        std::uint64_t input) {
    std::lock_guard<std::mutex> g(mu_);
    if (staging_ != nullptr) {
      staging_->clear();
      const std::size_t slot = staging_->add(pid, input);
      return intern_from_staging(slot, pid);
    }
    return intern_machine(factory_->make(pid, input), pid);
  }

  /// Resolves every (lane, returned) memo miss of one expansion block:
  /// staged into the pool in capacity-sized chunks, ONE batch_deliver
  /// sweep per chunk, results scattered back and interned.  out[i] is
  /// the successor lane of misses[i].
  void resolve_delivers(const std::vector<DeliverMiss>& misses,
                        std::vector<std::uint32_t>& out) {
    out.resize(misses.size());
    std::lock_guard<std::mutex> g(mu_);
    if (staging_ == nullptr) {
      for (std::size_t i = 0; i < misses.size(); ++i) {
        const Fingerprint key = memo_key(misses[i].lane, misses[i].returned);
        const std::uint32_t hit = deliver_memo_.find(key);
        if (hit != FlatFpMap::kNoValue) {
          ++memo_hits_;
          out[i] = hit;
          continue;
        }
        const LaneMeta& m = meta_locked(misses[i].lane);
        std::unique_ptr<StepMachine> next = machine_of(misses[i].lane)->clone();
        next->deliver(model::Value::of(misses[i].returned));
        out[i] = intern_machine(std::move(next), m.pid);
        deliver_memo_.insert_or_get(key, out[i]);
      }
      return;
    }
    const std::size_t cap = staging_->capacity();
    std::vector<std::size_t> staged_of(misses.size(), SIZE_MAX);
    for (std::size_t base = 0; base < misses.size(); base += cap) {
      const std::size_t end = std::min(misses.size(), base + cap);
      staging_->clear();
      for (std::size_t i = base; i < end; ++i) {
        const Fingerprint key = memo_key(misses[i].lane, misses[i].returned);
        const std::uint32_t hit = deliver_memo_.find(key);
        if (hit != FlatFpMap::kNoValue) {
          ++memo_hits_;
          out[i] = hit;
          continue;
        }
        const LaneMeta& m = meta_locked(misses[i].lane);
        const std::uint64_t* row = row_of(misses[i].lane);
        const std::size_t slot = staging_->add_staged(
            m.pid, row, static_cast<std::uint32_t>(row[num_locals_]));
        returned_[slot] = misses[i].returned;
        staged_of[i] = slot;
      }
      if (staging_->size() == 0) continue;
      staging_->deliver_all(returned_.data());
      ++batch_sweeps_;
      batched_lanes_ += staging_->size();
      for (std::size_t i = base; i < end; ++i) {
        if (staged_of[i] == SIZE_MAX) continue;
        const LaneMeta& m = meta_locked(misses[i].lane);
        out[i] = intern_from_staging(staged_of[i], m.pid);
        deliver_memo_.insert_or_get(
            memo_key(misses[i].lane, misses[i].returned), out[i]);
      }
    }
  }

  /// The lane a crash of `lane` leaves behind (volatile locals wiped,
  /// re-entered at the recovery label).  Crash outcomes are a function
  /// of the lane alone, so one memo entry covers every crash variant.
  [[nodiscard]] std::uint32_t resolve_crash(std::uint32_t lane) {
    std::lock_guard<std::mutex> g(mu_);
    const Fingerprint key = memo_key(lane, 0);
    const std::uint32_t hit = crash_memo_.find(key);
    if (hit != FlatFpMap::kNoValue) {
      ++memo_hits_;
      return hit;
    }
    const LaneMeta m = meta_locked(lane);
    std::uint32_t next_lane;
    if (staging_ != nullptr) {
      assert(crash_reentry_);
      const proto::IrMachine tmp(program_, m.pid, row_of(lane),
                                 proto::IrMachine::CrashRestoreTag{});
      next_lane = intern_ir(tmp, m.pid);
    } else {
      std::unique_ptr<StepMachine> next = machine_of(lane)->clone();
      next->crash();
      next_lane = intern_machine(std::move(next), m.pid);
    }
    crash_memo_.insert_or_get(key, next_lane);
    return next_lane;
  }

  [[nodiscard]] std::uint64_t lanes() {
    std::lock_guard<std::mutex> g(mu_);
    return size_;
  }
  [[nodiscard]] std::uint64_t memo_hits() {
    std::lock_guard<std::mutex> g(mu_);
    return memo_hits_;
  }
  [[nodiscard]] std::uint64_t batch_sweeps() {
    std::lock_guard<std::mutex> g(mu_);
    return batch_sweeps_;
  }
  [[nodiscard]] std::uint64_t batched_lanes() {
    std::lock_guard<std::mutex> g(mu_);
    return batched_lanes_;
  }

  /// Capacity census of the arena (chunks + maps + staging columns).
  [[nodiscard]] std::uint64_t bytes() {
    std::lock_guard<std::mutex> g(mu_);
    std::uint64_t total = chunks_ * kLaneChunk *
                          (staging_ != nullptr
                               ? row_words_ * sizeof(std::uint64_t)
                               : sizeof(void*));
    total += chunks_ * kLaneChunk * sizeof(LaneMeta);
    total += (intern_.capacity() + deliver_memo_.capacity() +
              crash_memo_.capacity()) *
             24;
    if (staging_ != nullptr) {
      total += staging_->capacity() * (num_locals_ + 6) * 8;
    }
    return total;
  }

 private:
  [[nodiscard]] const std::uint64_t* row_of(std::uint32_t lane) const {
    return row_chunks_[lane >> kLaneChunkBits].load(
               std::memory_order_acquire) +
           (lane & (kLaneChunk - 1)) * row_words_;
  }
  [[nodiscard]] StepMachine* machine_of(std::uint32_t lane) const {
    return machine_chunks_[lane >> kLaneChunkBits]
        .load(std::memory_order_acquire)[lane & (kLaneChunk - 1)]
        .get();
  }
  [[nodiscard]] const LaneMeta& meta_locked(std::uint32_t lane) const {
    return meta_chunks_[lane >> kLaneChunkBits].load(
        std::memory_order_relaxed)[lane & (kLaneChunk - 1)];
  }

  /// Reserves lane `size_` (allocating chunks as needed) or flags
  /// overflow.  Caller holds mu_.
  [[nodiscard]] bool reserve_lane() {
    const std::size_t chunk = size_ >> kLaneChunkBits;
    if (chunk >= kMaxLaneChunks) {
      overflow_.store(true, std::memory_order_relaxed);
      return false;
    }
    if ((size_ & (kLaneChunk - 1)) == 0 &&
        meta_chunks_[chunk].load(std::memory_order_relaxed) == nullptr) {
      meta_chunks_[chunk].store(new LaneMeta[kLaneChunk],
                                std::memory_order_release);
      if (staging_ != nullptr) {
        row_chunks_[chunk].store(new std::uint64_t[kLaneChunk * row_words_](),
                                 std::memory_order_release);
      } else {
        machine_chunks_[chunk].store(
            new std::unique_ptr<StepMachine>[kLaneChunk],
            std::memory_order_release);
      }
      ++chunks_;
    }
    return true;
  }

  [[nodiscard]] std::uint32_t intern_from_staging(std::size_t slot,
                                                  objects::ProcessId pid) {
    staging_->copy_locals(slot, locals_scratch_.data());
    LaneMeta m;
    m.pid = pid;
    m.done = staging_->done(slot);
    m.decision = m.done ? staging_->decision(slot) : 0;
    m.op = m.done ? PendingOp::none() : staging_->pending(slot);
    m.can_crash = crash_reentry_ && !m.done;
    return intern_row(locals_scratch_.data(), staging_->pc(slot), m);
  }

  [[nodiscard]] std::uint32_t intern_ir(const proto::IrMachine& ir,
                                        objects::ProcessId pid) {
    for (std::size_t l = 0; l < num_locals_; ++l) {
      locals_scratch_[l] = ir.locals_data()[l];
    }
    LaneMeta m;
    m.pid = pid;
    m.done = ir.done();
    m.decision = m.done ? ir.decision() : 0;
    m.op = m.done ? PendingOp::none() : ir.next_op();
    m.can_crash = crash_reentry_ && !m.done;
    return intern_row(locals_scratch_.data(), ir.pc(), m);
  }

  [[nodiscard]] std::uint32_t intern_row(const std::uint64_t* locals,
                                         std::uint32_t pc, const LaneMeta& m) {
    FpFold f;
    f.fold(std::uint64_t{m.pid} + 1);
    for (const std::uint16_t l : program_->layout()) f.fold(locals[l]);
    const auto lane = static_cast<std::uint32_t>(size_);
    const std::uint32_t existing = intern_.insert_or_get(f.done(), lane);
    if (existing != FlatFpMap::kNoValue) return existing;
    if (!reserve_lane()) return 0;
    std::uint64_t* row =
        row_chunks_[lane >> kLaneChunkBits].load(std::memory_order_relaxed) +
        (lane & (kLaneChunk - 1)) * row_words_;
    for (std::size_t l = 0; l < num_locals_; ++l) row[l] = locals[l];
    row[num_locals_] = pc;
    meta_chunks_[lane >> kLaneChunkBits].load(
        std::memory_order_relaxed)[lane & (kLaneChunk - 1)] = m;
    ++size_;
    return lane;
  }

  [[nodiscard]] std::uint32_t intern_machine(
      std::unique_ptr<StepMachine> machine, objects::ProcessId pid) {
    FpFold f;
    f.fold(std::uint64_t{pid} + 1);
    enc_scratch_.clear();
    machine->encode(enc_scratch_);
    for (const std::uint64_t w : enc_scratch_) f.fold(w);
    const auto lane = static_cast<std::uint32_t>(size_);
    const std::uint32_t existing = intern_.insert_or_get(f.done(), lane);
    if (existing != FlatFpMap::kNoValue) return existing;
    if (!reserve_lane()) return 0;
    LaneMeta m;
    m.pid = pid;
    m.done = machine->done();
    m.decision = m.done ? machine->decision() : 0;
    m.op = m.done ? PendingOp::none() : machine->next_op();
    m.can_crash = machine->can_crash();
    meta_chunks_[lane >> kLaneChunkBits].load(
        std::memory_order_relaxed)[lane & (kLaneChunk - 1)] = m;
    machine_chunks_[lane >> kLaneChunkBits].load(
        std::memory_order_relaxed)[lane & (kLaneChunk - 1)] =
        std::move(machine);
    ++size_;
    return lane;
  }

  const MachineFactory* factory_;
  std::shared_ptr<const proto::Program> program_;
  std::unique_ptr<proto::StatePool> staging_;
  std::size_t num_locals_ = 0;
  std::size_t row_words_ = 0;
  bool crash_reentry_ = false;

  std::mutex mu_;
  FlatFpMap intern_{1 << 12};
  FlatFpMap deliver_memo_{1 << 14};
  FlatFpMap crash_memo_{1 << 10};
  std::size_t size_ = 0;
  std::size_t chunks_ = 0;
  std::uint64_t memo_hits_ = 0;
  std::uint64_t batch_sweeps_ = 0;
  std::uint64_t batched_lanes_ = 0;
  std::vector<std::uint64_t> returned_;
  std::vector<std::uint64_t> locals_scratch_;
  std::vector<std::uint64_t> enc_scratch_;

  // ff-lint: allow(R1): arena capacity flag of the checker itself,
  std::atomic<bool> overflow_{false};
  // Published lane-chunk pointers (single writer under mu_, readers
  // ordered by ring/barrier edges) — checker machinery, never part of
  // any modeled protocol history.
  // ff-lint: allow(R1): published lane-chunk pointers, checker-internal
  std::vector<std::atomic<std::uint64_t*>> row_chunks_{kMaxLaneChunks};
  // ff-lint: allow(R1): see row_chunks_
  std::vector<std::atomic<LaneMeta*>> meta_chunks_{kMaxLaneChunks};
  // ff-lint: allow(R1): see row_chunks_
  std::vector<std::atomic<std::unique_ptr<StepMachine>*>> machine_chunks_{
      kMaxLaneChunks};
};

// ---------------------------------------------------------------------------
// Shards, per-worker state, shared context.
// ---------------------------------------------------------------------------

struct alignas(64) ShardState {
  FlatFpMap table{16};
  std::vector<Record> records;      ///< post-spill: since spilled_base
  std::vector<Fingerprint> fp_by_seq;  ///< never spilled (cycle scan)
  std::vector<std::uint64_t> wave;  ///< items to expand this wave
  /// Direct mode: censused next-wave items (flipped into wave at the
  /// boundary).  Spill mode: raw successor candidates awaiting dedup.
  std::vector<std::uint64_t> cand;
  std::vector<std::string> runs;    ///< sorted spill run files
  std::uint32_t next_seq = 0;
  std::uint32_t spilled_base = 0;
  std::uint64_t grows = 0;  ///< table grows accumulated across resets
};

struct Pend {
  const std::uint64_t* item;
  std::uint32_t miss_idx;
  std::uint32_t pid;
  std::uint32_t variant;
  std::uint8_t flags;
  std::uint8_t slot;
  std::uint32_t shared_off;  ///< into WorkerState::pend_shared
};

struct WorkerState {
  // Census accumulators, merged after the join.
  std::uint64_t terminal_states = 0;
  std::uint64_t violations_found = 0;
  std::uint64_t max_depth = 0;
  std::map<ViolationKind, std::uint64_t> by_kind;
  std::set<std::uint64_t> agreed_values;
  std::vector<FEdge> edges;
  std::uint64_t forwarded = 0;
  std::uint64_t memo_hits = 0;
  std::uint64_t immunity_checks = 0;
  std::uint64_t immunity_skips = 0;
  std::uint64_t spill_runs = 0;
  std::uint64_t spilled_records = 0;
  std::uint64_t spill_bytes = 0;

  // Worker-private transition caches in front of the arena's memos.
  FlatFpMap deliver_cache{1 << 12};
  FlatFpMap crash_cache{1 << 10};

  // Expansion scratch.
  StateEncoder encoder;
  EncodedState parent_enc;
  /// Points at parent_enc while expand_item runs, null during
  /// flush_pends (whose pended parents are no longer the assembled
  /// one): finalize_child patches the child encoding off it when set.
  const EncodedState* cur_parent_enc = nullptr;
  std::vector<std::uint64_t> block_scratch;
  /// Per-pid block hashes + multiset sums of the current parent (valid
  /// with cur_parent_enc, sym only): the child fingerprint is the
  /// shared fold plus these sums with the stepped block's hash swapped.
  std::vector<Fingerprint> parent_block_hash;
  std::uint64_t parent_sum_a = 0;
  std::uint64_t parent_sum_b = 0;
  /// Block-hash memo indexed by (lane, crashes, killed) — a block is a
  /// pure function of those three, so most children reuse an already
  /// hashed block.  {0,0} marks unset; a real hash equal to the
  /// sentinel merely recomputes.
  std::vector<Fingerprint> block_hash_memo;
  EncodedState child_enc;
  std::vector<std::uint32_t> slot_of;
  std::vector<std::uint64_t> child_item;
  std::vector<std::uint64_t> shared_scratch;
  std::vector<std::uint64_t> ring_tmp;
  std::vector<Pend> pends;
  std::vector<DeliverMiss> misses;
  std::vector<std::uint32_t> miss_lanes;
  std::vector<std::uint64_t> pend_shared;

  // Dedup scratch.
  std::vector<std::uint32_t> sort_idx;
  std::vector<std::uint32_t> dup_from_run;
  std::vector<Record> run_buf;
};

struct BestViolation {
  std::uint32_t depth;
  Fingerprint fp;
  ViolationKind kind;
};

struct Ctx {
  const FrontierExploreOptions* fopts = nullptr;
  const ExploreOptions* opts = nullptr;
  const SimWorld* root = nullptr;
  const SimConfig* cfg = nullptr;  ///< root->config(): defaults applied
  const ProgramFacts* facts = nullptr;
  LaneArena* arena = nullptr;
  bool sym = false;
  std::uint32_t S = 0;  ///< shared words
  std::uint32_t n = 0;  ///< processes
  std::size_t stride = 0;
  std::uint32_t num_objects = 0;
  std::uint32_t num_registers = 0;
  std::vector<std::uint64_t> input_sorted;  ///< distinct input raws
  std::vector<std::uint64_t> cand_raws;
  std::uint32_t num_shards = 1;
  std::uint32_t shard_bits = 0;
  std::uint32_t shard_mask = 0;
  std::uint32_t workers = 1;
  bool spill_enabled = false;
  /// No spilling configured: candidates are admitted into the census at
  /// routing time (table probe per child) instead of being staged,
  /// sorted and merge-joined at the wave boundary — the sort and the
  /// candidate copies exist only to support spill-run merge-join.
  bool direct = true;
  std::string spill_dir;
  std::uint64_t mem_limit = 0;
  std::vector<ShardState> shards;
  std::unique_ptr<util::HandoffMesh> mesh;
  std::unique_ptr<util::SpinBarrier> barrier;
  std::vector<WorkerState>* wlocals = nullptr;

  // Checker-internal coordination state — the engine runs outside the
  // traced object layer by construction, like parallel_explorer's.
  // ff-lint: allow(R1): checker-internal state-census counter
  std::atomic<std::uint64_t> states{0};
  // ff-lint: allow(R1): wave-quiescence counter of the checker itself
  std::atomic<std::uint32_t> expanding{0};
  // ff-lint: allow(R1): checker-internal abort flag, never protocol-visible
  std::atomic<bool> aborted{false};
  // ff-lint: allow(R1): checker-internal first-violation latch
  std::atomic<bool> found_violation{false};
  // ff-lint: allow(R1): wave-stop broadcast from worker 0, checker-internal
  std::atomic<bool> stop{false};
  // ff-lint: allow(R1): spill broadcast from worker 0, checker-internal
  std::atomic<bool> spill_now{false};

  // Worker-0-only (read by the main thread after the join).
  std::uint64_t waves = 0;
  std::uint64_t peak_bytes = 0;

  std::mutex violation_mu;
  std::optional<BestViolation> best;

  [[nodiscard]] std::uint32_t shard_of(const Fingerprint& fp) const {
    return static_cast<std::uint32_t>(fp.a) & shard_mask;
  }
  [[nodiscard]] std::uint32_t owner_of(std::uint32_t shard) const {
    return shard % workers;
  }
};

// ---------------------------------------------------------------------------
// Item encoding — the exact mirror of SimWorld::encode().
// ---------------------------------------------------------------------------

/// Assembles the block-structured encoding of an item: shared words
/// verbatim, then per pid the encode_process() block (separator, kill
/// flag, crash counter iff crash_budget > 0, machine encode words).
void assemble_enc(const Ctx& ctx, const std::uint64_t* item,
                  EncodedState& out) {
  out.words.clear();
  out.block_off.clear();
  const std::uint64_t* shared = item + kHeaderWords;
  out.words.insert(out.words.end(), shared, shared + ctx.S);
  out.shared_len = ctx.S;
  out.block_off.push_back(ctx.S);
  const std::uint64_t* pw = item + kHeaderWords + ctx.S;
  const bool crashes_on = ctx.cfg->crash_budget > 0;
  for (std::uint32_t pid = 0; pid < ctx.n; ++pid) {
    out.words.push_back(0xFEEDFACEFEEDFACEULL);
    out.words.push_back(item_killed(pw[pid]) ? 1 : 0);
    if (crashes_on) out.words.push_back(item_crashes(pw[pid]));
    ctx.arena->encode_lane(item_lane(pw[pid]), out.words);
    out.block_off.push_back(static_cast<std::uint32_t>(out.words.size()));
  }
}

/// SimWorld::fault_allowed over the item's capped fault counts.  The
/// encoding stores min(used, t), and capped == t ⟺ used >= t, so the
/// budget test is exact; with t = ∞ the counts are 0 and never gate.
[[nodiscard]] bool item_fault_allowed(const Ctx& ctx,
                                      const std::uint64_t* shared,
                                      objects::ProcessId pid,
                                      objects::ObjectId obj) {
  if (ctx.cfg->kind == model::FaultKind::kNone) return false;
  if (!ctx.cfg->object_faulty(obj)) return false;
  if (ctx.cfg->t != model::kUnbounded &&
      shared[ctx.num_objects + ctx.num_registers + obj] >= ctx.cfg->t) {
    return false;
  }
  if (pid != kAdversaryPid && !ctx.cfg->faulting_processes.empty() &&
      !ctx.cfg->faulting_processes.contains(pid)) {
    return false;
  }
  return true;
}

/// Mirrors encode_shared's count update: the stored word is the CAPPED
/// count min(used, t), so a manifested fault bumps it saturating at t.
void bump_fault_cap(const Ctx& ctx, std::uint64_t* shared,
                    objects::ObjectId obj) {
  if (ctx.cfg->t == model::kUnbounded) return;
  std::uint64_t& w = shared[ctx.num_objects + ctx.num_registers + obj];
  if (w < ctx.cfg->t) ++w;
}

// ---------------------------------------------------------------------------
// Expansion.
// ---------------------------------------------------------------------------

bool drain_rings(Ctx& ctx, WorkerState& ws, std::uint32_t w);
std::uint32_t admit_item(Ctx& ctx, WorkerState& ws, std::uint32_t shard_idx,
                         std::uint64_t* item, std::uint32_t existing,
                         std::vector<std::uint64_t>& next_wave);

/// Rebuilds one pid's encode block into ws.block_scratch — the exact
/// per-pid segment assemble_enc emits (separator, kill flag, crash
/// counter iff crash_budget > 0, machine encode words).
void build_block(const Ctx& ctx, WorkerState& ws, std::uint64_t pw) {
  ws.block_scratch.clear();
  ws.block_scratch.push_back(0xFEEDFACEFEEDFACEULL);
  ws.block_scratch.push_back(item_killed(pw) ? 1 : 0);
  if (ctx.cfg->crash_budget > 0) ws.block_scratch.push_back(item_crashes(pw));
  ctx.arena->encode_lane(item_lane(pw), ws.block_scratch);
}

/// Memoized hash_block of the block build_block(pw) would produce.
/// The dense index covers lanes × crash counts × the kill flag; lanes
/// past the cap (runaway scalar protocols) compute uncached.
[[nodiscard]] Fingerprint block_hash_cached(const Ctx& ctx, WorkerState& ws,
                                            std::uint64_t pw) {
  constexpr std::size_t kBlockMemoCap = std::size_t{1} << 21;
  const std::size_t idx =
      ((std::size_t{item_lane(pw)} * (ctx.cfg->crash_budget + 1) +
        item_crashes(pw))
       << 1) |
      (item_killed(pw) ? 1 : 0);
  if (idx >= kBlockMemoCap) {
    build_block(ctx, ws, pw);
    return hash_block(ws.block_scratch.data(),
                      ws.block_scratch.data() + ws.block_scratch.size());
  }
  if (idx >= ws.block_hash_memo.size()) {
    ws.block_hash_memo.resize(
        std::max<std::size_t>(idx + 1, ws.block_hash_memo.size() * 2),
        Fingerprint{0, 0});
  }
  Fingerprint& slot = ws.block_hash_memo[idx];
  if (slot.a == 0 && slot.b == 0) {
    build_block(ctx, ws, pw);
    slot = hash_block(ws.block_scratch.data(),
                      ws.block_scratch.data() + ws.block_scratch.size());
  }
  return slot;
}

/// Child encoding by patching the parent's: the shared prefix always
/// changes, but at most one pid block does (none for adversary steps),
/// so the other blocks are a straight copy.  Falls back to full
/// assembly when the stepped block changes length (variable-length
/// scalar machine encodings).
void patch_enc(const Ctx& ctx, WorkerState& ws, const EncodedState& parent,
               const std::uint64_t* c, std::uint32_t pid, EncodedState& out) {
  out.words.assign(parent.words.begin(), parent.words.end());
  out.block_off.assign(parent.block_off.begin(), parent.block_off.end());
  out.shared_len = parent.shared_len;
  std::copy(c + kHeaderWords, c + kHeaderWords + ctx.S, out.words.begin());
  if (pid == kAdversaryPid) return;
  build_block(ctx, ws, c[kHeaderWords + ctx.S + pid]);
  const std::uint32_t begin = out.block_off[pid];
  const std::uint32_t end = out.block_off[pid + 1];
  if (ws.block_scratch.size() != std::size_t{end} - begin) {
    assemble_enc(ctx, c, out);
    return;
  }
  std::copy(ws.block_scratch.begin(), ws.block_scratch.end(),
            out.words.begin() + begin);
}

/// Builds the successor item and routes it: own shard → admitted into
/// the census immediately (direct mode) or staged in the candidate
/// buffer (spill mode), foreign shard → its owner's ring (draining our
/// own inbox while the ring is full, so mutual-full rings cannot
/// deadlock).
void finalize_child(Ctx& ctx, WorkerState& ws, std::uint32_t w,
                    const std::uint64_t* item, std::uint32_t pid,
                    std::uint32_t variant, std::uint8_t flags,
                    std::uint8_t slot, const std::uint64_t* shared,
                    std::uint32_t new_lane, bool kill) {
  std::uint64_t* c = ws.child_item.data();
  std::memcpy(c + kHeaderWords, shared, ctx.S * sizeof(std::uint64_t));
  std::memcpy(c + kHeaderWords + ctx.S, item + kHeaderWords + ctx.S,
              ctx.n * sizeof(std::uint64_t));
  if (pid != kAdversaryPid) {
    const std::uint64_t old = item[kHeaderWords + ctx.S + pid];
    const std::uint32_t crashes =
        item_crashes(old) + ((flags & kChoiceCrash) != 0 ? 1u : 0u);
    c[kHeaderWords + ctx.S + pid] =
        pack_pid_word(new_lane, crashes, kill || item_killed(old));
  }
  Fingerprint fp;
  if (ctx.sym && ws.cur_parent_enc != nullptr) {
    // Incremental canonical fingerprint: fold the child's shared words
    // and swap the stepped pid's block hash in the parent's multiset
    // sums — no child encoding is materialized at all.
    std::uint64_t sum_a = ws.parent_sum_a;
    std::uint64_t sum_b = ws.parent_sum_b;
    if (pid != kAdversaryPid) {
      const Fingerprint h =
          block_hash_cached(ctx, ws, c[kHeaderWords + ctx.S + pid]);
      sum_a += h.a - ws.parent_block_hash[pid].a;
      sum_b += h.b - ws.parent_block_hash[pid].b;
    }
    fp = fingerprint_shared_sum(c + kHeaderWords, ctx.S, sum_a, sum_b);
  } else if (ws.cur_parent_enc != nullptr) {
    patch_enc(ctx, ws, *ws.cur_parent_enc, c, pid, ws.child_enc);
    fp = fingerprint_state(ws.child_enc, ctx.sym);
  } else {
    assemble_enc(ctx, c, ws.child_enc);
    fp = fingerprint_state(ws.child_enc, ctx.sym);
  }
  const std::uint32_t shard = ctx.shard_of(fp);
  const std::uint32_t owner = ctx.owner_of(shard);
  // Start the dedup probe's cache fill while the header words are
  // written — admit_item's find lands on a warm line.
  if (ctx.direct && owner == w) ctx.shards[shard].table.prefetch(fp);
  c[kItFpA] = fp.a;
  c[kItFpB] = fp.b;
  c[kItParA] = item[kItFpA];
  c[kItParB] = item[kItFpB];
  c[kItChoice] = std::uint64_t{pid} | (std::uint64_t{variant} << 32);
  c[kItParent] = (item[kItDepth] >> 32) | (std::uint64_t{flags} << 32) |
                 (std::uint64_t{slot} << 40);
  c[kItDepth] = static_cast<std::uint32_t>(item[kItDepth]) + 1;
  if (owner == w) {
    ShardState& sh = ctx.shards[shard];
    if (ctx.direct) {
      admit_item(ctx, ws, shard, c, sh.table.find(fp), sh.cand);
    } else {
      sh.cand.insert(sh.cand.end(), c, c + ctx.stride);
    }
    return;
  }
  ++ws.forwarded;
  util::SpscWordRing& ring = ctx.mesh->ring(w, owner);
  bool pushed = ring.try_push(c);
  while (!pushed) {
    (void)drain_rings(ctx, ws, w);
    pushed = ring.try_push(c);
  }
}

/// Deliver-edge successor: worker cache first, else queued for the next
/// batched arena resolve (the child's shared words are snapshotted into
/// pend_shared until the flush).
void deliver_child(Ctx& ctx, WorkerState& ws, std::uint32_t w,
                   const std::uint64_t* item, std::uint32_t pid,
                   std::uint32_t variant, std::uint8_t flags,
                   std::uint8_t slot, const std::uint64_t* shared,
                   std::uint32_t lane, std::uint64_t returned) {
  const Fingerprint key = memo_key(lane, returned);
  const std::uint32_t hit = ws.deliver_cache.find(key);
  if (hit != FlatFpMap::kNoValue) {
    ++ws.memo_hits;
    finalize_child(ctx, ws, w, item, pid, variant, flags, slot, shared, hit,
                   false);
    return;
  }
  const auto off = static_cast<std::uint32_t>(ws.pend_shared.size());
  ws.pend_shared.insert(ws.pend_shared.end(), shared, shared + ctx.S);
  ws.pends.push_back(Pend{item, static_cast<std::uint32_t>(ws.misses.size()),
                          pid, variant, flags, slot, off});
  ws.misses.push_back(DeliverMiss{lane, returned});
}

void flush_pends(Ctx& ctx, WorkerState& ws, std::uint32_t w) {
  if (ws.pends.empty()) return;
  ws.cur_parent_enc = nullptr;  // pended parents: not the assembled one
  ctx.arena->resolve_delivers(ws.misses, ws.miss_lanes);
  for (std::size_t i = 0; i < ws.misses.size(); ++i) {
    ws.deliver_cache.insert_or_get(
        memo_key(ws.misses[i].lane, ws.misses[i].returned),
        ws.miss_lanes[i]);
  }
  // finalize_child may push into pend_shared-free structures only; the
  // pend list itself is fixed now, so iterate by index over a swap.
  std::vector<Pend> pends;
  pends.swap(ws.pends);
  for (const Pend& p : pends) {
    finalize_child(ctx, ws, w, p.item, p.pid, p.variant, p.flags, p.slot,
                   ws.pend_shared.data() + p.shared_off,
                   ws.miss_lanes[p.miss_idx], false);
  }
  ws.pends.clear();
  ws.misses.clear();
  ws.pend_shared.clear();
}

[[nodiscard]] std::uint32_t resolve_crash_cached(Ctx& ctx, WorkerState& ws,
                                                 std::uint32_t lane) {
  const Fingerprint key = memo_key(lane, 0);
  const std::uint32_t hit = ws.crash_cache.find(key);
  if (hit != FlatFpMap::kNoValue) {
    ++ws.memo_hits;
    return hit;
  }
  const std::uint32_t next = ctx.arena->resolve_crash(lane);
  ws.crash_cache.insert_or_get(key, next);
  return next;
}

/// Enumerates every enabled Choice of the item — the exact mirror of
/// SimWorld::enabled() + apply(), operating on shared raws and lanes.
void expand_item(Ctx& ctx, WorkerState& ws, std::uint32_t w,
                 const std::uint64_t* item) {
  const std::uint64_t* shared = item + kHeaderWords;
  const std::uint64_t* pw = item + kHeaderWords + ctx.S;
  std::uint64_t* scratch = ws.shared_scratch.data();

  assemble_enc(ctx, item, ws.parent_enc);
  ws.cur_parent_enc = &ws.parent_enc;
  if (ctx.sym) {
    canonical_slots(ws.parent_enc, ws.slot_of);
    ws.parent_block_hash.resize(ctx.n);
    ws.parent_sum_a = 0;
    ws.parent_sum_b = 0;
    for (std::uint32_t p = 0; p < ctx.n; ++p) {
      const Fingerprint h = block_hash_cached(
          ctx, ws, item[kHeaderWords + ctx.S + p]);
      ws.parent_block_hash[p] = h;
      ws.parent_sum_a += h.a;
      ws.parent_sum_b += h.b;
    }
  }
  const auto slot_for = [&](std::uint32_t pid) -> std::uint8_t {
    if (!ctx.sym || pid == kAdversaryPid) return kNoSlot;
    return static_cast<std::uint8_t>(ws.slot_of[pid]);
  };

  const auto C = static_cast<std::uint32_t>(ctx.cand_raws.size());
  bool any_live = false;
  for (std::uint32_t pid = 0; pid < ctx.n; ++pid) {
    if (item_killed(pw[pid])) continue;
    const std::uint32_t lane = item_lane(pw[pid]);
    const LaneMeta& m = ctx.arena->meta(lane);
    if (m.done) continue;
    any_live = true;
    const PendingOp& op = m.op;
    const std::uint8_t slot = slot_for(pid);

    // A corrupted delivered value can drive an indexed protocol to an
    // out-of-range object/register (SimWorld's .at() throws there; a
    // worker thread cannot, so the run aborts as incomplete instead).
    if ((op.type == OpType::kCas && op.object >= ctx.num_objects) ||
        ((op.type == OpType::kRegRead || op.type == OpType::kRegWrite) &&
         op.object >= ctx.num_registers)) {
      ctx.aborted.store(true, std::memory_order_relaxed);
      return;
    }

    if (op.type == OpType::kCas) {
      const std::uint64_t before = shared[op.object];
      const std::uint64_t expected = op.expected.raw();
      const std::uint64_t desired = op.desired.raw();
      const std::uint64_t after = before == expected ? desired : before;

      // Correct step: objects[obj] = after, deliver(before).
      std::memcpy(scratch, shared, ctx.S * sizeof(std::uint64_t));
      scratch[op.object] = after;
      deliver_child(ctx, ws, w, item, pid, 0, 0, slot, scratch, lane, before);

      // Fault branches (Definition 1: only manifesting outcomes).
      if (item_fault_allowed(ctx, shared, pid, op.object)) {
        switch (ctx.cfg->kind) {
          case model::FaultKind::kOverriding:
            if (ctx.cfg->use_immunity_pruning && ctx.facts != nullptr &&
                ctx.facts->object_immune(op.object)) {
              ++ws.immunity_skips;
              assert(!(before != expected && before != desired) &&
                     "A2 overriding-immunity certificate violated");
              break;
            }
            ++ws.immunity_checks;
            if (before != expected && before != desired) {
              std::memcpy(scratch, shared, ctx.S * sizeof(std::uint64_t));
              scratch[op.object] = desired;
              bump_fault_cap(ctx, scratch, op.object);
              deliver_child(ctx, ws, w, item, pid, 0, kChoiceFault, slot,
                            scratch, lane, before);
            }
            break;
          case model::FaultKind::kSilent:
            if (before == expected && before != desired) {
              std::memcpy(scratch, shared, ctx.S * sizeof(std::uint64_t));
              bump_fault_cap(ctx, scratch, op.object);
              deliver_child(ctx, ws, w, item, pid, 0, kChoiceFault, slot,
                            scratch, lane, before);
            }
            break;
          case model::FaultKind::kInvisible:
            std::memcpy(scratch, shared, ctx.S * sizeof(std::uint64_t));
            scratch[op.object] = after;
            bump_fault_cap(ctx, scratch, op.object);
            deliver_child(ctx, ws, w, item, pid, 0, kChoiceFault, slot,
                          scratch, lane, before + 1);
            break;
          case model::FaultKind::kNonresponsive:
            // The operation never returns: the machine is NOT stepped,
            // the process is killed, budget is consumed.
            std::memcpy(scratch, shared, ctx.S * sizeof(std::uint64_t));
            bump_fault_cap(ctx, scratch, op.object);
            finalize_child(ctx, ws, w, item, pid, 0, kChoiceFault, slot,
                           scratch, lane, true);
            break;
          case model::FaultKind::kArbitrary:
            for (std::uint32_t v = 0; v < C; ++v) {
              if (ctx.cand_raws[v] == after) continue;
              std::memcpy(scratch, shared, ctx.S * sizeof(std::uint64_t));
              scratch[op.object] = ctx.cand_raws[v];
              bump_fault_cap(ctx, scratch, op.object);
              deliver_child(ctx, ws, w, item, pid, v, kChoiceFault, slot,
                            scratch, lane, before);
            }
            break;
          case model::FaultKind::kDataCorruption:
          case model::FaultKind::kNone:
            break;  // adversary steps / no per-operation faults
        }
      }
    } else if (op.type == OpType::kRegRead) {
      deliver_child(ctx, ws, w, item, pid, 0, 0, slot, shared, lane,
                    shared[ctx.num_objects + op.object]);
    } else if (op.type == OpType::kRegWrite) {
      std::memcpy(scratch, shared, ctx.S * sizeof(std::uint64_t));
      scratch[ctx.num_objects + op.object] = op.desired.raw();
      deliver_child(ctx, ws, w, item, pid, 0, 0, slot, scratch, lane,
                    kBottomRaw);
    }

    // Crash branches (variant 0 = crash-before, 1 = crash-after).
    if (ctx.cfg->crash_budget > 0 &&
        item_crashes(pw[pid]) < ctx.cfg->crash_budget && m.can_crash) {
      const std::uint32_t crash_lane = resolve_crash_cached(ctx, ws, lane);
      finalize_child(ctx, ws, w, item, pid, 0, kChoiceCrash, slot, shared,
                     crash_lane, false);
      if (op.type == OpType::kCas) {
        const std::uint64_t before = shared[op.object];
        const std::uint64_t after =
            before == op.expected.raw() ? op.desired.raw() : before;
        if (after != before) {
          std::memcpy(scratch, shared, ctx.S * sizeof(std::uint64_t));
          scratch[op.object] = after;
          finalize_child(ctx, ws, w, item, pid, 1, kChoiceCrash, slot,
                         scratch, crash_lane, false);
        }
      } else if (op.type == OpType::kRegWrite &&
                 shared[ctx.num_objects + op.object] != op.desired.raw()) {
        std::memcpy(scratch, shared, ctx.S * sizeof(std::uint64_t));
        scratch[ctx.num_objects + op.object] = op.desired.raw();
        finalize_child(ctx, ws, w, item, pid, 1, kChoiceCrash, slot, scratch,
                       crash_lane, false);
      }
    }
  }

  // Adversary corruption steps (data-fault model).
  if (any_live && ctx.cfg->allow_corruption_steps &&
      ctx.cfg->kind == model::FaultKind::kDataCorruption) {
    for (objects::ObjectId obj = 0; obj < ctx.num_objects; ++obj) {
      if (!item_fault_allowed(ctx, shared, kAdversaryPid, obj)) continue;
      for (std::uint32_t v = 0; v < C; ++v) {
        if (ctx.cand_raws[v] == shared[obj]) continue;
        std::memcpy(scratch, shared, ctx.S * sizeof(std::uint64_t));
        scratch[obj] = ctx.cand_raws[v];
        bump_fault_cap(ctx, scratch, obj);
        finalize_child(ctx, ws, w, item, kAdversaryPid, obj * C + v,
                       kChoiceFault, kNoSlot, scratch, 0, false);
      }
    }
  }
}

/// Pops every inbound ring into the owned shards' census (direct mode)
/// or candidate buffers (spill mode).
bool drain_rings(Ctx& ctx, WorkerState& ws, std::uint32_t w) {
  bool any = false;
  for (std::uint32_t p = 0; p < ctx.workers; ++p) {
    util::SpscWordRing& ring = ctx.mesh->ring(p, w);
    while (ring.try_pop(ws.ring_tmp.data())) {
      any = true;
      const Fingerprint fp{ws.ring_tmp[kItFpA], ws.ring_tmp[kItFpB]};
      const std::uint32_t shard = ctx.shard_of(fp);
      ShardState& sh = ctx.shards[shard];
      if (ctx.direct) {
        admit_item(ctx, ws, shard, ws.ring_tmp.data(), sh.table.find(fp),
                   sh.cand);
      } else {
        sh.cand.insert(sh.cand.end(), ws.ring_tmp.begin(),
                       ws.ring_tmp.begin() + ctx.stride);
      }
    }
  }
  return any;
}

void expand_phase(Ctx& ctx, WorkerState& ws, std::uint32_t w,
                  runtime::BudgetMeter& meter) {
  std::size_t since_flush = 0;
  for (std::uint32_t s = w; s < ctx.num_shards; s += ctx.workers) {
    ShardState& sh = ctx.shards[s];
    for (std::size_t off = 0; off + ctx.stride <= sh.wave.size();
         off += ctx.stride) {
      if (ctx.aborted.load(std::memory_order_relaxed)) break;
      if (!meter.charge()) {
        ctx.aborted.store(true, std::memory_order_relaxed);
        break;
      }
      expand_item(ctx, ws, w, sh.wave.data() + off);
      if (++since_flush >= kExpandBlock) {
        flush_pends(ctx, ws, w);
        (void)drain_rings(ctx, ws, w);
        since_flush = 0;
      }
    }
  }
  flush_pends(ctx, ws, w);
}

// ---------------------------------------------------------------------------
// Deduplication and census.
// ---------------------------------------------------------------------------

/// detail::check_terminal over item words (no SimWorld): same pid order,
/// same precedence (invalid before inconsistent, stalled last), so the
/// violation KIND matches the sequential engine state-for-state.  The
/// human-readable detail string is produced only for the one reported
/// violation, by replaying its witness (build_witness).
struct TerminalVerdict {
  std::optional<ViolationKind> kind;
  std::optional<std::uint64_t> agreed;
};

[[nodiscard]] TerminalVerdict check_terminal_item(const Ctx& ctx,
                                                  const std::uint64_t* item) {
  TerminalVerdict out;
  const std::uint64_t* pw = item + kHeaderWords + ctx.S;
  bool any_killed = false;
  std::optional<std::uint64_t> first;
  for (std::uint32_t pid = 0; pid < ctx.n; ++pid) {
    if (item_killed(pw[pid])) {
      any_killed = true;
      continue;
    }
    const LaneMeta& m = ctx.arena->meta(item_lane(pw[pid]));
    if (!m.done) continue;
    const std::uint64_t value = m.decision;
    if (!std::binary_search(ctx.input_sorted.begin(), ctx.input_sorted.end(),
                            value)) {
      out.kind = ViolationKind::kInvalid;
      return out;
    }
    if (first && *first != value) {
      out.kind = ViolationKind::kInconsistent;
      return out;
    }
    if (!first) first = value;
  }
  if (ctx.opts->killed_is_violation && any_killed) {
    out.kind = ViolationKind::kStalled;
    return out;
  }
  out.agreed = first;
  return out;
}

[[nodiscard]] bool item_terminal(const Ctx& ctx, const std::uint64_t* item) {
  const std::uint64_t* pw = item + kHeaderWords + ctx.S;
  for (std::uint32_t pid = 0; pid < ctx.n; ++pid) {
    if (!item_killed(pw[pid]) &&
        !ctx.arena->meta(item_lane(pw[pid])).done) {
      return false;
    }
  }
  return true;
}

void offer_violation(Ctx& ctx, std::uint32_t depth, const Fingerprint& fp,
                     ViolationKind kind) {
  std::lock_guard<std::mutex> g(ctx.violation_mu);
  if (!ctx.best || depth < ctx.best->depth ||
      (depth == ctx.best->depth && fp_less(fp, ctx.best->fp))) {
    ctx.best = BestViolation{depth, fp, kind};
  }
  ctx.found_violation.store(true, std::memory_order_relaxed);
}

/// Census admission of one owner-routed candidate.  `existing` is the
/// caller's dedup lookup result (kNoValue when the fingerprint is new).
/// Duplicate → record the transition edge; novel → intern the
/// fingerprint, assign the dense id, push the Record, and either run
/// the terminal verdict or append the item to `next_wave`.  Returns
/// the table value of the fingerprint (seq | terminal flag).
/// Single-writer: only the shard's owner may call this.  A state is
/// admitted with depth = parent depth + 1 whether admission happens at
/// routing time (direct mode) or at the wave boundary (spill mode) —
/// every candidate of wave d carries depth d+1 — so the census and the
/// BFS depth-minimality guarantee are identical in both modes.
std::uint32_t admit_item(Ctx& ctx, WorkerState& ws, std::uint32_t shard_idx,
                         std::uint64_t* item, std::uint32_t existing,
                         std::vector<std::uint64_t>& next_wave) {
  ShardState& sh = ctx.shards[shard_idx];
  const Fingerprint fp{item[kItFpA], item[kItFpB]};
  const auto depth = static_cast<std::uint32_t>(item[kItDepth]);
  const auto parent_id = static_cast<std::uint32_t>(item[kItParent]);
  const auto pid = static_cast<std::uint32_t>(item[kItChoice]);
  const auto variant = static_cast<std::uint32_t>(item[kItChoice] >> 32);
  const auto flags = static_cast<std::uint8_t>(item[kItParent] >> 32);
  const auto slot = static_cast<std::uint8_t>(item[kItParent] >> 40);

  if (existing != FlatFpMap::kNoValue) {
    // Duplicate: record the transition edge (non-terminal targets
    // only — terminal states cannot sit on a cycle).
    if ((existing & kTerminalFlag) == 0 && parent_id != kNoParent) {
      const std::uint32_t to =
          ((existing & ~kTerminalFlag) << ctx.shard_bits) | shard_idx;
      ws.edges.push_back(FEdge{parent_id, to, pid, variant, flags, slot});
    }
    return existing;
  }

  // Novel state.
  const bool terminal = item_terminal(ctx, item);
  const std::uint32_t seq = sh.next_seq;
  if ((std::uint64_t{seq} << ctx.shard_bits) > kIdSpace) {
    ctx.aborted.store(true, std::memory_order_relaxed);
    return FlatFpMap::kNoValue;
  }
  ++sh.next_seq;
  std::uint32_t value = seq;
  if (terminal) value |= kTerminalFlag;
  sh.table.insert_or_get(fp, value);
  const std::uint32_t id = (seq << ctx.shard_bits) | shard_idx;
  item[kItDepth] =
      static_cast<std::uint32_t>(item[kItDepth]) | (std::uint64_t{id} << 32);

  Record rec;
  rec.fp = fp;
  rec.parent_fp = Fingerprint{item[kItParA], item[kItParB]};
  rec.seq = seq;
  rec.parent_id = parent_id;
  rec.pid = pid;
  rec.variant = variant;
  rec.depth = depth;
  rec.flags = flags | (terminal ? kRecTerminal : 0);
  rec.slot = slot;
  sh.records.push_back(rec);
  sh.fp_by_seq.push_back(fp);

  const std::uint64_t nstates =
      ctx.states.fetch_add(1, std::memory_order_relaxed) + 1;
  if ((ctx.opts->max_states != 0 && nstates > ctx.opts->max_states) ||
      nstates > kIdSpace) {
    ctx.aborted.store(true, std::memory_order_relaxed);
    return value;
  }
  ws.max_depth = std::max<std::uint64_t>(ws.max_depth, depth);

  if (!terminal && parent_id != kNoParent) {
    ws.edges.push_back(FEdge{parent_id, id, pid, variant, flags, slot});
  }

  if (terminal) {
    ++ws.terminal_states;
    const TerminalVerdict v = check_terminal_item(ctx, item);
    if (v.kind) {
      ++ws.violations_found;
      ++ws.by_kind[*v.kind];
      offer_violation(ctx, depth, fp, *v.kind);
    } else if (v.agreed) {
      ws.agreed_values.insert(*v.agreed);
    }
  } else {
    next_wave.insert(next_wave.end(), item, item + ctx.stride);
  }
  return value;
}

/// Marks candidates whose fingerprint already sits in a spill run:
/// streamed merge-join of the fp-sorted candidate order against each
/// sorted run.  dup value = seq | terminal flag.
void mark_run_duplicates(const Ctx& ctx, WorkerState& ws, ShardState& sh) {
  const std::size_t count = ws.sort_idx.size();
  const auto cand_fp = [&](std::uint32_t ci) {
    const std::uint64_t* it = sh.cand.data() + std::size_t{ci} * ctx.stride;
    return Fingerprint{it[kItFpA], it[kItFpB]};
  };
  ws.run_buf.resize(kRunBuf);
  for (const std::string& path : sh.runs) {
    std::ifstream in(path, std::ios::binary);
    if (!in) continue;  // run unreadable: treated as empty (abort below)
    std::size_t ci = 0;
    bool more = true;
    while (more && ci < count) {
      in.read(reinterpret_cast<char*>(ws.run_buf.data()),
              static_cast<std::streamsize>(kRunBuf * sizeof(Record)));
      const std::size_t got =
          static_cast<std::size_t>(in.gcount()) / sizeof(Record);
      more = got == kRunBuf;
      for (std::size_t r = 0; r < got && ci < count; ++r) {
        const Record& rec = ws.run_buf[r];
        while (ci < count && fp_less(cand_fp(ws.sort_idx[ci]), rec.fp)) ++ci;
        while (ci < count && cand_fp(ws.sort_idx[ci]) == rec.fp) {
          ws.dup_from_run[ws.sort_idx[ci]] =
              rec.seq | ((rec.flags & kRecTerminal) != 0 ? kTerminalFlag : 0);
          ++ci;
        }
      }
    }
  }
}

/// Wave-boundary dedup of one shard.  Direct mode (no spilling):
/// candidates were censused at routing time, cand already IS the next
/// wave — flip the buffers.  Spill mode: sort the staged candidates by
/// fingerprint, merge-join against the spill runs, probe the private
/// table, census the novel states and build the next wave.
void dedup_shard(Ctx& ctx, WorkerState& ws, std::uint32_t shard_idx) {
  ShardState& sh = ctx.shards[shard_idx];
  sh.wave.clear();
  if (ctx.direct) {
    sh.wave.swap(sh.cand);
    return;
  }
  const std::size_t count = sh.cand.size() / ctx.stride;
  if (count == 0) return;

  ws.sort_idx.resize(count);
  for (std::uint32_t i = 0; i < count; ++i) ws.sort_idx[i] = i;
  std::sort(ws.sort_idx.begin(), ws.sort_idx.end(),
            [&](std::uint32_t x, std::uint32_t y) {
              const std::uint64_t* ix = sh.cand.data() + std::size_t{x} * ctx.stride;
              const std::uint64_t* iy = sh.cand.data() + std::size_t{y} * ctx.stride;
              return ix[kItFpA] < iy[kItFpA] ||
                     (ix[kItFpA] == iy[kItFpA] && ix[kItFpB] < iy[kItFpB]);
            });
  ws.dup_from_run.assign(count, FlatFpMap::kNoValue);
  if (!sh.runs.empty()) mark_run_duplicates(ctx, ws, sh);

  Fingerprint prev_fp{};
  std::uint32_t prev_value = FlatFpMap::kNoValue;
  bool have_prev = false;
  for (std::size_t k = 0; k < count; ++k) {
    const std::uint32_t ci = ws.sort_idx[k];
    std::uint64_t* item = sh.cand.data() + std::size_t{ci} * ctx.stride;
    const Fingerprint fp{item[kItFpA], item[kItFpB]};

    std::uint32_t existing = FlatFpMap::kNoValue;
    if (have_prev && fp == prev_fp) {
      existing = prev_value;
    } else if (ws.dup_from_run[ci] != FlatFpMap::kNoValue) {
      existing = ws.dup_from_run[ci];
    } else {
      existing = sh.table.find(fp);
    }

    prev_value = admit_item(ctx, ws, shard_idx, item, existing, sh.wave);
    if (ctx.aborted.load(std::memory_order_relaxed)) return;
    have_prev = true;
    prev_fp = fp;
  }
  sh.cand.clear();
}

// ---------------------------------------------------------------------------
// Spill.
// ---------------------------------------------------------------------------

void spill_shard(Ctx& ctx, WorkerState& ws, std::uint32_t shard_idx) {
  ShardState& sh = ctx.shards[shard_idx];
  if (sh.records.empty()) return;
  std::sort(sh.records.begin(), sh.records.end(),
            [](const Record& x, const Record& y) { return fp_less(x.fp, y.fp); });
  const std::string path = ctx.spill_dir + "/shard" +
                           std::to_string(shard_idx) + ".run" +
                           std::to_string(sh.runs.size());
  std::ofstream outf(path, std::ios::binary | std::ios::trunc);
  outf.write(reinterpret_cast<const char*>(sh.records.data()),
             static_cast<std::streamsize>(sh.records.size() * sizeof(Record)));
  if (!outf) {
    // A lost run would silently re-admit spilled states; abort instead.
    ctx.aborted.store(true, std::memory_order_relaxed);
    return;
  }
  ++ws.spill_runs;
  ws.spilled_records += sh.records.size();
  ws.spill_bytes += sh.records.size() * sizeof(Record);
  sh.runs.push_back(path);
  sh.spilled_base = sh.next_seq;
  std::vector<Record>().swap(sh.records);
  sh.grows += sh.table.grows();
  sh.table = FlatFpMap(1024);
}

// ---------------------------------------------------------------------------
// Witness reconstruction (through memory or spilled runs).
// ---------------------------------------------------------------------------

/// Binary search of one sorted run file for `fp` (seekg on 56-byte
/// records).  Returns true and fills `out` on a hit.
[[nodiscard]] bool search_run(const std::string& path, const Fingerprint& fp,
                              Record& out) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) return false;
  const auto bytes = static_cast<std::uint64_t>(in.tellg());
  std::uint64_t lo = 0, hi = bytes / sizeof(Record);
  while (lo < hi) {
    const std::uint64_t mid = lo + (hi - lo) / 2;
    Record rec;
    in.seekg(static_cast<std::streamoff>(mid * sizeof(Record)));
    in.read(reinterpret_cast<char*>(&rec), sizeof(Record));
    if (!in) return false;
    if (rec.fp == fp) {
      out = rec;
      return true;
    }
    if (fp_less(rec.fp, fp)) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return false;
}

[[nodiscard]] bool lookup_record(const Ctx& ctx, const Fingerprint& fp,
                                 Record& out) {
  const ShardState& sh = ctx.shards[ctx.shard_of(fp)];
  const std::uint32_t v = sh.table.find(fp);
  if (v != FlatFpMap::kNoValue) {
    const std::uint32_t seq = v & ~kTerminalFlag;
    assert(seq >= sh.spilled_base);
    out = sh.records[seq - sh.spilled_base];
    return true;
  }
  for (auto it = sh.runs.rbegin(); it != sh.runs.rend(); ++it) {
    if (search_run(*it, fp, out)) return true;
  }
  return false;
}

/// Discovery chain root → fp (forward order), walked through the
/// parent-fingerprint back-pointers.  Each hop strictly decreases BFS
/// depth, so the walk is bounded by the state's depth.
[[nodiscard]] std::vector<Record> record_chain(const Ctx& ctx,
                                               Fingerprint fp) {
  std::vector<Record> chain;
  Record rec;
  bool ok = lookup_record(ctx, fp, rec);
  while (ok && rec.parent_id != kNoParent) {
    chain.push_back(rec);
    ok = lookup_record(ctx, rec.parent_fp, rec);
  }
  assert(ok && "witness chain must reach the root");
  std::reverse(chain.begin(), chain.end());
  return chain;
}

/// Replays the chain from the root, re-resolving each recorded choice's
/// pid through its canonical slot (under symmetry a later walk may hold
/// a different orbit representative than the discoverer did; the slot
/// is orbit-invariant — same scheme as parallel_explore).
[[nodiscard]] std::vector<Choice> path_to(const Ctx& ctx,
                                          const Fingerprint& fp,
                                          SimWorld* world_out) {
  const std::vector<Record> chain = record_chain(ctx, fp);
  std::vector<Choice> out;
  out.reserve(chain.size());
  SimWorld world = *ctx.root;
  StateEncoder encoder;
  EncodedState enc;
  std::vector<std::uint32_t> order;
  for (const Record& rec : chain) {
    Choice c = record_choice(rec.pid, rec.variant, rec.flags);
    if (ctx.sym && rec.slot != kNoSlot) {
      encoder.encode(world, enc);
      canonical_order(enc, order);
      c.pid = order[rec.slot];
    }
    out.push_back(c);
    world.apply(c);
  }
  if (world_out != nullptr) *world_out = std::move(world);
  return out;
}

[[nodiscard]] Violation build_witness(const Ctx& ctx,
                                      const BestViolation& best) {
  SimWorld world = *ctx.root;
  std::vector<Choice> schedule = path_to(ctx, best.fp, &world);
  std::string why;
  const auto kind = detail::check_terminal(world, *ctx.opts, why);
  assert(kind && *kind == best.kind &&
         "replayed witness must reproduce the recorded violation kind");
  (void)kind;
  return Violation{best.kind, std::move(schedule), std::move(why)};
}

// ---------------------------------------------------------------------------
// Nontermination scan (post-join; same algorithm as parallel_explore).
// ---------------------------------------------------------------------------

struct CycleScan {
  std::uint64_t process_cycle_edges = 0;
  std::optional<std::vector<Choice>> witness;
};

CycleScan scan_for_cycles(const Ctx& ctx,
                          const std::vector<WorkerState>& locals) {
  CycleScan scan;
  std::vector<std::uint64_t> shard_base(ctx.num_shards + 1, 0);
  for (std::uint32_t s = 0; s < ctx.num_shards; ++s) {
    shard_base[s + 1] = shard_base[s] + ctx.shards[s].next_seq;
  }
  const auto n = static_cast<std::uint32_t>(shard_base[ctx.num_shards]);
  const auto dense = [&](std::uint32_t id) {
    return static_cast<std::uint32_t>(shard_base[id & ctx.shard_mask] +
                                      (id >> ctx.shard_bits));
  };
  const auto fp_of = [&](std::uint32_t id) {
    return ctx.shards[id & ctx.shard_mask].fp_by_seq[id >> ctx.shard_bits];
  };

  std::uint64_t num_edges = 0;
  for (const WorkerState& l : locals) num_edges += l.edges.size();
  if (num_edges == 0 || n == 0) return scan;

  // Retreat-edge pre-filter (in-memory runs only: spilled records no
  // longer expose depths in O(1)).  BFS discovers every state at its
  // MINIMAL depth, so along any edge depth[to] <= depth[from] + 1; around
  // a cycle the depths return to where they started, which forces at
  // least one edge with depth[to] <= depth[from].  No such retreat edge
  // means the reachable graph is acyclic and the whole Tarjan pass —
  // the dominant post-join cost on DAG protocols — can be skipped.
  if (std::all_of(ctx.shards.begin(), ctx.shards.begin() + ctx.num_shards,
                  [](const ShardState& s) { return s.spilled_base == 0; })) {
    const auto depth_of = [&](std::uint32_t id) {
      return ctx.shards[id & ctx.shard_mask]
          .records[id >> ctx.shard_bits]
          .depth;
    };
    bool retreat = false;
    for (const WorkerState& l : locals) {
      for (const FEdge& e : l.edges) {
        if (depth_of(e.to) <= depth_of(e.from)) {
          retreat = true;
          break;
        }
      }
      if (retreat) break;
    }
    if (!retreat) return scan;
  }

  // Flatten the per-worker edge lists into dense-id columns once: the
  // Tarjan walk and the classify loop then stream plain u32 arrays
  // instead of chasing an FEdge pointer and re-deriving dense() per
  // visit.  The original FEdge (choice payload for witness building) is
  // recovered by edge index through the per-worker range table.
  std::vector<std::uint32_t> efrom, eto;
  std::vector<std::uint8_t> estep;
  efrom.reserve(num_edges);
  eto.reserve(num_edges);
  estep.reserve(num_edges);
  std::vector<std::pair<std::uint64_t, const std::vector<FEdge>*>> eranges;
  for (const WorkerState& l : locals) {
    eranges.emplace_back(efrom.size(), &l.edges);
    for (const FEdge& e : l.edges) {
      efrom.push_back(dense(e.from));
      eto.push_back(dense(e.to));
      estep.push_back(e.process_step() ? 1 : 0);
    }
  }
  const auto edge_at = [&](std::uint64_t e) -> const FEdge& {
    std::size_t lo = 0;
    while (lo + 1 < eranges.size() && eranges[lo + 1].first <= e) ++lo;
    return (*eranges[lo].second)[e - eranges[lo].first];
  };
  std::vector<std::uint64_t> offset(n + 1, 0);
  for (const std::uint32_t v : efrom) ++offset[v + 1];
  for (std::uint32_t v = 0; v < n; ++v) offset[v + 1] += offset[v];
  std::vector<std::uint32_t> csr(num_edges);
  {
    std::vector<std::uint64_t> cursor = offset;
    for (std::uint32_t e = 0; e < num_edges; ++e) {
      csr[cursor[efrom[e]]++] = e;
    }
  }

  // Iterative Tarjan.
  constexpr std::uint32_t kUndef = 0xFFFFFFFFu;
  std::vector<std::uint32_t> index(n, kUndef), lowlink(n, kUndef);
  std::vector<std::uint32_t> scc_of(n, kUndef);
  std::vector<bool> on_stack(n, false);
  std::vector<std::uint32_t> stack;
  std::vector<std::uint32_t> scc_size;
  struct Frame {
    std::uint32_t v;
    std::uint64_t edge;
  };
  std::vector<Frame> frames;
  std::uint32_t next_index = 0;
  for (std::uint32_t root = 0; root < n; ++root) {
    if (index[root] != kUndef) continue;
    frames.push_back({root, offset[root]});
    index[root] = lowlink[root] = next_index++;
    stack.push_back(root);
    on_stack[root] = true;
    while (!frames.empty()) {
      Frame& f = frames.back();
      if (f.edge < offset[f.v + 1]) {
        const std::uint32_t w = eto[csr[f.edge++]];
        if (index[w] == kUndef) {
          index[w] = lowlink[w] = next_index++;
          stack.push_back(w);
          on_stack[w] = true;
          frames.push_back({w, offset[w]});
        } else if (on_stack[w]) {
          lowlink[f.v] = std::min(lowlink[f.v], index[w]);
        }
        continue;
      }
      if (lowlink[f.v] == index[f.v]) {
        const auto scc_id = static_cast<std::uint32_t>(scc_size.size());
        std::uint32_t size = 0;
        std::uint32_t w = kNoParent;
        do {
          w = stack.back();
          stack.pop_back();
          on_stack[w] = false;
          scc_of[w] = scc_id;
          ++size;
        } while (w != f.v);
        scc_size.push_back(size);
      }
      const std::uint32_t low = lowlink[f.v];
      frames.pop_back();
      if (!frames.empty()) {
        lowlink[frames.back().v] = std::min(lowlink[frames.back().v], low);
      }
    }
  }

  std::optional<std::uint32_t> chosen;
  for (std::uint32_t e = 0; e < num_edges; ++e) {
    const std::uint32_t du = efrom[e], dv = eto[e];
    const bool cyclic =
        scc_of[du] == scc_of[dv] && (scc_size[scc_of[du]] > 1 || du == dv);
    if (cyclic && estep[e] != 0) {
      ++scan.process_cycle_edges;
      if (!chosen) chosen = e;
    }
  }
  if (!chosen) return scan;

  // Witness: root → u, the process edge u → v, then BFS v → … → u
  // inside the SCC.
  const FEdge& key = edge_at(*chosen);
  const std::uint32_t du = efrom[*chosen], dv = eto[*chosen];
  std::vector<const FEdge*> lap_edges{&key};
  if (du != dv) {
    std::vector<std::uint32_t> pred(n, kUndef);
    std::vector<std::uint32_t> queue{dv};
    pred[dv] = *chosen;  // mark discovered (never dereferenced for dv)
    bool found = false;
    for (std::size_t head = 0; head < queue.size() && !found; ++head) {
      const std::uint32_t x = queue[head];
      for (std::uint64_t i = offset[x]; i < offset[x + 1]; ++i) {
        const std::uint32_t e = csr[i];
        const std::uint32_t y = eto[e];
        if (scc_of[y] != scc_of[du] || pred[y] != kUndef) continue;
        pred[y] = e;
        if (y == du) {
          found = true;
          break;
        }
        queue.push_back(y);
      }
    }
    assert(found && "SCC is strongly connected: a v→u path must exist");
    std::vector<const FEdge*> back;
    for (std::uint32_t cur = du; cur != dv;) {
      const std::uint32_t e = pred[cur];
      back.push_back(&edge_at(e));
      cur = efrom[e];
    }
    lap_edges.insert(lap_edges.end(), back.rbegin(), back.rend());
  }

  SimWorld at_u = *ctx.root;
  std::vector<Choice> witness = path_to(ctx, fp_of(key.from), &at_u);
  std::vector<Choice> lap;
  lap.reserve(lap_edges.size());
  {
    SimWorld world = at_u;
    StateEncoder encoder;
    EncodedState enc;
    std::vector<std::uint32_t> order;
    for (const FEdge* e : lap_edges) {
      Choice c = e->choice();
      if (ctx.sym && e->slot != kNoSlot) {
        encoder.encode(world, enc);
        canonical_order(enc, order);
        c.pid = order[e->slot];
      }
      lap.push_back(c);
      world.apply(c);
    }
  }
  if (ctx.sym) {
    if (auto closed = close_symmetric_cycle(at_u, lap)) {
      witness.insert(witness.end(), closed->begin(), closed->end());
    } else {
      witness.insert(witness.end(), lap.begin(), lap.end());
    }
  } else {
    witness.insert(witness.end(), lap.begin(), lap.end());
  }
  scan.witness = std::move(witness);
  return scan;
}

// ---------------------------------------------------------------------------
// Wave loop.
// ---------------------------------------------------------------------------

[[nodiscard]] std::uint64_t census_bytes(Ctx& ctx) {
  std::uint64_t total =
      ctx.arena->bytes() + ctx.mesh->capacity_bytes();
  for (const ShardState& sh : ctx.shards) {
    total += sh.table.capacity() * 24 + sh.records.capacity() * sizeof(Record);
    total += (sh.wave.capacity() + sh.cand.capacity()) * 8;
    total += sh.fp_by_seq.capacity() * sizeof(Fingerprint);
  }
  for (const WorkerState& wsx : *ctx.wlocals) {
    total += wsx.edges.capacity() * sizeof(FEdge);
    total += (wsx.deliver_cache.capacity() + wsx.crash_cache.capacity()) * 24;
  }
  return total;
}

/// The spillable structures the watermark governs (tables + records).
[[nodiscard]] std::uint64_t spillable_bytes(const Ctx& ctx) {
  std::uint64_t total = 0;
  for (const ShardState& sh : ctx.shards) {
    total += sh.table.capacity() * 24 + sh.records.capacity() * sizeof(Record);
  }
  return total;
}

void worker_main(Ctx& ctx, std::uint32_t w) {
  WorkerState& ws = (*ctx.wlocals)[w];
  // Belt-and-braces unit cap on expanded items (also the R4 budget
  // discipline): the dedup-side census counter is the primary abort.
  runtime::BudgetMeter meter(runtime::BudgetSpec{ctx.opts->max_states, 0});

  bool running = true;
  while (running) {
    expand_phase(ctx, ws, w, meter);
    ctx.expanding.fetch_sub(1, std::memory_order_acq_rel);
    // Quiesce: a producer's ring pushes happen before its decrement, so
    // reading 0 FIRST and then sweeping empty rings is conclusive.
    bool quiet = false;
    bool drained_any = true;
    while (!quiet || drained_any) {
      quiet = ctx.expanding.load(std::memory_order_acquire) == 0;
      drained_any = drain_rings(ctx, ws, w);
    }
    ctx.barrier->arrive_and_wait();  // B1: all candidates routed

    for (std::uint32_t s = w; s < ctx.num_shards; s += ctx.workers) {
      dedup_shard(ctx, ws, s);
    }
    ctx.barrier->arrive_and_wait();  // B2: census settled

    if (w == 0) {
      std::uint64_t next_items = 0;
      for (const ShardState& sh : ctx.shards) {
        next_items += sh.wave.size() / ctx.stride;
      }
      ctx.peak_bytes = std::max(ctx.peak_bytes, census_bytes(ctx));
      if (ctx.arena->overflowed()) {
        ctx.aborted.store(true, std::memory_order_relaxed);
      }
      const bool aborted = ctx.aborted.load(std::memory_order_relaxed);
      const bool stop_early =
          ctx.opts->stop_at_first_violation &&
          ctx.found_violation.load(std::memory_order_relaxed);
      const bool done = aborted || stop_early || next_items == 0;
      ctx.stop.store(done, std::memory_order_relaxed);
      ctx.spill_now.store(!done && ctx.spill_enabled &&
                              spillable_bytes(ctx) > ctx.mem_limit,
                          std::memory_order_relaxed);
      if (!done) {
        ++ctx.waves;
        ctx.expanding.store(ctx.workers, std::memory_order_relaxed);
      }
    }
    ctx.barrier->arrive_and_wait();  // B3: verdict visible to everyone

    if (ctx.stop.load(std::memory_order_relaxed)) {
      running = false;
      continue;
    }
    if (ctx.spill_now.load(std::memory_order_relaxed)) {
      for (std::uint32_t s = w; s < ctx.num_shards; s += ctx.workers) {
        spill_shard(ctx, ws, s);
      }
    }
  }
}

}  // namespace

FrontierExploreResult frontier_explore(const SimConfig& config,
                                       const MachineFactory& factory,
                                       const std::vector<std::uint64_t>& inputs,
                                       const FrontierExploreOptions& options) {
  if (options.explore.sleep_sets) {
    throw std::invalid_argument(
        "frontier_explore: sleep-set POR is a DFS-path notion and cannot "
        "apply to a BFS wavefront; set ExploreOptions::sleep_sets = false "
        "(the visited-state census is identical — sleep sets prune "
        "transitions, never states)");
  }

  FrontierExploreResult out;
  ExploreResult& result = out.explore;
  const ExploreOptions& opts = options.explore;

  SimWorld root(config, factory, inputs);

  Ctx ctx;
  ctx.fopts = &options;
  ctx.opts = &opts;
  ctx.root = &root;
  ctx.cfg = &root.config();  // arbitrary_candidates defaulted here
  ctx.facts = root.facts();
  ctx.sym = opts.symmetry_reduction && root.processes_symmetric();
  ctx.n = root.processes();
  ctx.S = root.shared_words();
  ctx.stride = kHeaderWords + ctx.S + ctx.n;
  ctx.num_objects = ctx.cfg->num_objects;
  ctx.num_registers = ctx.cfg->num_registers;
  ctx.input_sorted = inputs;
  std::sort(ctx.input_sorted.begin(), ctx.input_sorted.end());
  ctx.input_sorted.erase(
      std::unique(ctx.input_sorted.begin(), ctx.input_sorted.end()),
      ctx.input_sorted.end());
  for (const model::Value v : ctx.cfg->arbitrary_candidates) {
    ctx.cand_raws.push_back(v.raw());
  }

  std::uint32_t workers = options.num_threads != 0
                              ? options.num_threads
                              : std::thread::hardware_concurrency();
  // Owner-computes workers spin at barriers and on handoff rings —
  // oversubscribing cores turns every spin into a lost timeslice, so the
  // request is capped at the machine's parallelism (shard ownership
  // rebalances automatically: owner = shard % workers).
  const std::uint32_t hw =
      std::max<std::uint32_t>(1, std::thread::hardware_concurrency());
  workers = std::min(std::max<std::uint32_t>(1, workers), hw);
  const std::uint32_t shards = std::bit_ceil(std::max<std::uint32_t>(
      1, options.shard_count != 0 ? options.shard_count
                                  : std::max<std::uint32_t>(64, workers)));
  ctx.num_shards = shards;
  ctx.shard_bits = static_cast<std::uint32_t>(std::countr_zero(shards));
  ctx.shard_mask = shards - 1;
  ctx.workers = std::min(workers, shards);

  ctx.spill_dir = options.spill_dir;
  ctx.mem_limit = options.mem_limit_bytes;
  ctx.spill_enabled = !ctx.spill_dir.empty() && ctx.mem_limit != 0;
  if (ctx.spill_enabled) {
    std::error_code ec;
    std::filesystem::create_directories(ctx.spill_dir, ec);
    if (ec) ctx.spill_enabled = false;
  }
  ctx.direct = !ctx.spill_enabled;

  LaneArena arena(factory, options.batch_lanes);
  ctx.arena = &arena;
  ctx.shards = std::vector<ShardState>(ctx.num_shards);
  const std::size_t per_shard_hint = std::max<std::size_t>(
      16, detail::table_hint(opts) / ctx.num_shards);
  for (ShardState& sh : ctx.shards) sh.table = FlatFpMap(per_shard_hint);
  ctx.mesh = std::make_unique<util::HandoffMesh>(ctx.workers, ctx.stride,
                                                 kRingRecords);
  ctx.barrier = std::make_unique<util::SpinBarrier>(ctx.workers);

  std::vector<WorkerState> wlocals(ctx.workers);
  for (WorkerState& ws : wlocals) {
    ws.child_item.resize(ctx.stride, 0);
    ws.shared_scratch.resize(ctx.S, 0);
    ws.ring_tmp.resize(ctx.stride, 0);
  }
  ctx.wlocals = &wlocals;

  // Root item, seeded as the sole wave-0 candidate of its shard: direct
  // mode admits it here, spill mode interns it in the first dedup pass
  // (terminal roots included — no special case); either way wave 0
  // expands nothing and the first barrier round promotes it.
  {
    std::vector<std::uint64_t> item(ctx.stride, 0);
    std::vector<std::uint64_t> shared;
    root.encode_shared(shared);
    assert(shared.size() == ctx.S);
    std::copy(shared.begin(), shared.end(), item.begin() + kHeaderWords);
    for (std::uint32_t pid = 0; pid < ctx.n; ++pid) {
      item[kHeaderWords + ctx.S + pid] = pack_pid_word(
          arena.root_lane(pid, inputs[pid]), root.crashes_used(pid),
          root.killed(pid));
    }
    item[kItParent] = std::uint64_t{kNoParent} |
                      (std::uint64_t{kNoSlot} << 40);
    item[kItChoice] = 0;
    item[kItDepth] = 0;
    WorkerState& ws0 = wlocals[0];
    assemble_enc(ctx, item.data(), ws0.child_enc);
    assert(ws0.child_enc.words == root.encode() &&
           "item encoding must mirror SimWorld::encode()");
    const Fingerprint root_fp = fingerprint_state(ws0.child_enc, ctx.sym);
    item[kItFpA] = root_fp.a;
    item[kItFpB] = root_fp.b;
    item[kItParA] = root_fp.a;  // unused (parent_id is kNoParent)
    item[kItParB] = root_fp.b;
    const std::uint32_t root_shard = ctx.shard_of(root_fp);
    ShardState& sh = ctx.shards[root_shard];
    if (ctx.direct) {
      admit_item(ctx, ws0, root_shard, item.data(), sh.table.find(root_fp),
                 sh.cand);
    } else {
      sh.cand.insert(sh.cand.end(), item.begin(), item.end());
    }
  }

  ctx.expanding.store(ctx.workers, std::memory_order_relaxed);
  {
    std::vector<std::thread> threads;
    threads.reserve(ctx.workers - 1);
    for (std::uint32_t wid = 1; wid < ctx.workers; ++wid) {
      threads.emplace_back([&ctx, wid] { worker_main(ctx, wid); });
    }
    worker_main(ctx, 0);
    for (auto& t : threads) t.join();
  }

  const bool aborted = ctx.aborted.load(std::memory_order_relaxed);
  result.states_visited = ctx.states.load(std::memory_order_relaxed);
  for (const WorkerState& ws : wlocals) {
    result.terminal_states += ws.terminal_states;
    result.violations_found += ws.violations_found;
    result.max_depth = std::max(result.max_depth, ws.max_depth);
    for (const auto& [kind, count] : ws.by_kind) {
      result.violations_by_kind[kind] += count;
    }
    result.agreed_values.insert(ws.agreed_values.begin(),
                                ws.agreed_values.end());
    result.immunity_checks += ws.immunity_checks;
    result.immunity_skips += ws.immunity_skips;
    out.stats.forwarded += ws.forwarded;
    out.stats.memo_hits += ws.memo_hits;
    out.stats.spill_runs += ws.spill_runs;
    out.stats.spilled_records += ws.spilled_records;
    out.stats.spill_bytes += ws.spill_bytes;
  }
  for (ShardState& sh : ctx.shards) {
    result.table_grows += sh.grows + sh.table.grows();
  }

  if (ctx.best) result.violation = build_witness(ctx, *ctx.best);

  const bool stopped_early =
      opts.stop_at_first_violation &&
      ctx.found_violation.load(std::memory_order_relaxed);
  if (!aborted && !stopped_early) {
    const CycleScan scan = scan_for_cycles(ctx, wlocals);
    if (scan.process_cycle_edges > 0) {
      const std::uint64_t reported =
          opts.stop_at_first_violation ? 1 : scan.process_cycle_edges;
      result.violations_found += reported;
      result.violations_by_kind[ViolationKind::kNontermination] += reported;
      if (!result.violation && scan.witness) {
        result.violation = Violation{
            ViolationKind::kNontermination, std::move(*scan.witness),
            "cycle in the state graph: a process can take steps forever"};
      }
    }
  }

  result.complete =
      !aborted && !(opts.stop_at_first_violation && result.violations_found > 0);
  result.peak_bytes = std::max(ctx.peak_bytes, census_bytes(ctx));

  out.stats.waves = ctx.waves;
  out.stats.memo_hits += arena.memo_hits();
  out.stats.batch_sweeps = arena.batch_sweeps();
  out.stats.batched_lanes = arena.batched_lanes();
  out.stats.arena_lanes = arena.lanes();
  return out;
}

}  // namespace ff::sched
