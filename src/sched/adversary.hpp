// Scripted adversaries reproducing the executions the impossibility
// proofs construct.
//
// Theorem 19 (covering argument): with f CAS objects, t = 1 and n = f+2
// processes, the following execution defeats ANY candidate consensus
// protocol:
//   1. p0 runs solo to completion and decides its own input v0
//      (wait-freedom + validity force this);
//   2. for i = 1..f, pi runs solo until its first CAS on an object not
//      yet written by p1..p_{i-1}; that CAS suffers an overriding fault
//      (erasing whatever p0 left there) and pi is halted — Claim 20
//      guarantees pi reaches such a CAS;
//   3. every trace p0 left in the objects is now overwritten, so when
//      p_{f+1} runs solo it cannot distinguish this run from one where
//      p0 never ran, and decides some v ∈ {v1..v_{f+1}} ≠ v0.
//
// run_covering_adversary() drives exactly this schedule against any
// MachineFactory and reports whether the disagreement materialized and
// whether the side conditions (one fault per object, f faulty objects)
// held — i.e. it CHECKS the proof against a concrete protocol instead of
// trusting it.
#pragma once

#include <cstdint>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "sched/program.hpp"
#include "sched/sim_world.hpp"

namespace ff::sched {

struct CoveringAdversaryResult {
  /// Claim 20: every pi (1 ≤ i ≤ f) reached a CAS on a fresh object.
  bool claim20_held = true;
  /// p0 and p_{f+1} both decided.
  bool both_decided = false;
  /// p0's decision differs from p_{f+1}'s — the consistency violation.
  bool disagreement = false;
  std::optional<std::uint64_t> p0_decision;
  std::optional<std::uint64_t> last_decision;
  /// Objects faulted, in order (the O_{j_1} ... O_{j_f} of the proof).
  std::vector<objects::ObjectId> faulted_objects;
  /// Manifested overriding faults per object (all entries must be ≤ 1,
  /// witnessing that t = 1 suffices for the lower bound).
  std::vector<std::uint32_t> faults_per_object;
  std::uint64_t total_steps = 0;
  std::vector<std::string> log;
};

/// Runs the Theorem 19 execution against `factory`'s protocol using
/// `f` objects and f+2 processes with inputs `inputs` (size f+2, distinct,
/// inputs[0] different from all others).  `step_cap` bounds each solo run
/// (a protocol that loops forever fails wait-freedom instead).
[[nodiscard]] CoveringAdversaryResult run_covering_adversary(
    const MachineFactory& factory, std::uint32_t f,
    const std::vector<std::uint64_t>& inputs, std::uint64_t step_cap = 100000);

}  // namespace ff::sched
