// JitterCas — a transparent CAS decorator that yields a pseudo-random
// number of times before forwarding each operation.
//
// On a single-core host all interleaving comes from preemption; without
// perturbation the threads of a trial tend to run back-to-back and explore
// few schedules.  Injecting deterministic-per-operation yields between the
// barrier and the CAS instruction widens schedule coverage considerably
// (the deterministic simulator still provides the exhaustive coverage).
#pragma once

#include <atomic>
#include <cstdint>
#include <thread>

#include "objects/cas_object.hpp"
#include "util/rng.hpp"

namespace ff::runtime {

class JitterCas final : public objects::CasObject {
 public:
  /// Wraps `inner` (borrowed).  Each operation yields between 0 and
  /// `max_yields` times, chosen by hashing (seed, op sequence).
  JitterCas(objects::CasObject& inner, std::uint64_t seed,
            std::uint32_t max_yields = 3)
      : CasObject(inner.id(), "jitter+" + inner.name()),
        inner_(inner),
        seed_(seed),
        max_yields_(max_yields) {}

  model::Value cas(model::Value expected, model::Value desired,
                   objects::ProcessId caller) override {
    if (max_yields_ > 0) {
      const std::uint64_t op = seq_.fetch_add(1, std::memory_order_relaxed);
      const std::uint64_t yields =
          util::mix64(seed_ ^ op) % (max_yields_ + 1);
      for (std::uint64_t i = 0; i < yields; ++i) {
        std::this_thread::yield();
      }
    }
    return inner_.cas(expected, desired, caller);
  }

  [[nodiscard]] model::Value debug_read() const override {
    return inner_.debug_read();
  }

  void reset(model::Value initial = model::Value::bottom()) override {
    inner_.reset(initial);
    seq_.store(0, std::memory_order_relaxed);
  }

 private:
  objects::CasObject& inner_;
  const std::uint64_t seed_;
  const std::uint32_t max_yields_;
  // ff-lint: allow(R1): yield-count cursor for schedule noise; the value
  std::atomic<std::uint64_t> seq_{0};
  // never reaches protocol code — the wrapped CasObject carries the state.
};

}  // namespace ff::runtime
