// Unified budget/deadline abstraction for every bounded campaign in the
// repository — extracted from runtime/stress.hpp so that step/time caps
// mean the same thing everywhere.
//
// A BudgetSpec declares the caps (0 = unlimited); a BudgetMeter is the
// runtime accumulator that charges units against them.  Units are
// caller-defined: run_stress charges one unit per trial, random_walk and
// the schedule fuzzer one unit per simulated step.  The wall-clock
// deadline is optional and — crucially for seed-determinism — the meter
// touches the clock ONLY when a deadline is configured, so purely
// unit-capped campaigns are exact functions of their options.
//
// Truncation contract shared by all users: when a meter reports
// exhaustion the campaign must stop, mark its report incomplete
// (`complete = false` or equivalent) and never fabricate a verdict for
// work it did not perform.
#pragma once

#include <chrono>
#include <cstdint>

namespace ff::runtime {

/// Declarative caps.  0 = unlimited for both fields.
struct BudgetSpec {
  /// Maximum units (trials, simulated steps, ... — caller-defined).
  std::uint64_t max_units = 0;
  /// Wall-clock deadline in milliseconds from meter construction.
  std::uint64_t max_millis = 0;
};

class BudgetMeter {
  using Clock = std::chrono::steady_clock;

 public:
  explicit BudgetMeter(const BudgetSpec& spec)
      : spec_(spec),
        deadline_(spec.max_millis == 0
                      ? Clock::time_point::max()
                      : Clock::now() +
                            std::chrono::milliseconds(spec.max_millis)) {}

  /// Consumes `units`.  Returns false — and marks the meter exhausted —
  /// when the unit cap would be exceeded (the excess work must not run).
  bool charge(std::uint64_t units = 1) {
    if (spec_.max_units != 0 && used_ + units > spec_.max_units) {
      exhausted_ = true;
      return false;
    }
    used_ += units;
    return true;
  }

  /// True once the deadline has passed (checks the clock only when a
  /// deadline is configured) or a charge was refused.  Campaigns poll
  /// this at iteration boundaries, so a deadline may overshoot by at
  /// most one iteration.
  [[nodiscard]] bool expired() {
    if (exhausted_) return true;
    if (spec_.max_millis != 0 && Clock::now() >= deadline_) {
      exhausted_ = true;
    }
    return exhausted_;
  }

  /// True iff a cap was ever hit (charge refusal or deadline).
  [[nodiscard]] bool exhausted() const noexcept { return exhausted_; }
  [[nodiscard]] std::uint64_t used() const noexcept { return used_; }
  [[nodiscard]] const BudgetSpec& spec() const noexcept { return spec_; }

 private:
  BudgetSpec spec_;
  Clock::time_point deadline_;
  std::uint64_t used_ = 0;
  bool exhausted_ = false;
};

}  // namespace ff::runtime
