// Real-thread execution of consensus trials.
//
// One trial = n std::threads released through a spin barrier, each running
// protocol.decide(input_i, i) once.  Nonresponsive faults (which model an
// operation that never returns) are surfaced as exceptions by FaultyCas
// and converted to undecided outcomes here, so a trial always terminates.
#pragma once

#include <cstdint>
#include <thread>
#include <vector>

#include "consensus/consensus.hpp"
#include "consensus/verify.hpp"
#include "faults/faulty_cas.hpp"
#include "util/rng.hpp"
#include "util/spin_barrier.hpp"

namespace ff::runtime {

struct TrialOutcome {
  std::vector<consensus::InputValue> inputs;
  std::vector<consensus::Decision> decisions;
  consensus::Verdict verdict;
};

/// Runs one consensus trial with the given per-process inputs.
/// `stagger_seed` adds a small random pre-start spin per thread to vary
/// interleavings (0 = no stagger).
[[nodiscard]] inline TrialOutcome run_trial(
    consensus::Protocol& protocol,
    const std::vector<consensus::InputValue>& inputs,
    std::uint64_t stagger_seed = 0) {
  const auto n = static_cast<std::uint32_t>(inputs.size());
  std::vector<consensus::Decision> decisions(n);
  util::SpinBarrier barrier(n);

  std::vector<std::thread> threads;
  threads.reserve(n);
  for (std::uint32_t pid = 0; pid < n; ++pid) {
    threads.emplace_back([&, pid] {
      std::uint64_t spins = 0;
      if (stagger_seed != 0) {
        spins = util::mix64(stagger_seed ^ pid) % 256;
      }
      barrier.arrive_and_wait();
      for (std::uint64_t i = 0; i < spins; ++i) {
        std::this_thread::yield();
      }
      try {
        decisions[pid] = protocol.decide(inputs[pid], pid);
      } catch (const faults::NonresponsiveError&) {
        decisions[pid] = consensus::Decision::undecided(0);
      }
    });
  }
  for (auto& t : threads) t.join();

  TrialOutcome outcome;
  outcome.inputs = inputs;
  outcome.decisions = std::move(decisions);
  outcome.verdict = consensus::verify_consensus(inputs, outcome.decisions);
  return outcome;
}

/// Deterministic distinct inputs for trial `trial`: process i proposes
/// base + i + 1 where base varies per trial.  All inputs stay below the
/// staged protocol's kNeverValue and above 0.
[[nodiscard]] inline std::vector<consensus::InputValue> make_inputs(
    std::uint32_t n, std::uint64_t trial, std::uint64_t seed) {
  const std::uint64_t base =
      (util::mix64(seed ^ trial) % 0x0FFFFFFFULL) * n;
  std::vector<consensus::InputValue> inputs(n);
  for (std::uint32_t i = 0; i < n; ++i) inputs[i] = base + i + 1;
  return inputs;
}

}  // namespace ff::runtime
