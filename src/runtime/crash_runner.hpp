// Real-thread execution of consensus trials under process crashes.
//
// One trial = n supervisors released through a spin barrier.  Each
// supervisor runs its process as a sequence of REAL worker threads: the
// first worker enters protocol.decide(); when the armed CrashPolicy
// pulls the plug (proto::IrProtocol throws faults::CrashError) that
// worker thread unwinds and dies, the supervisor joins it — the
// happens-before edge the persistent-local snapshot relies on — and
// starts a fresh std::thread that re-enters decide() at the protocol's
// recovery label.  The restart loop is bounded by the per-process crash
// budget, which the protocol enforces (a crash point never fires once
// the budget is spent), so every trial terminates.
#pragma once

#include <cstdint>
#include <thread>
#include <vector>

#include "consensus/consensus.hpp"
#include "consensus/verify.hpp"
#include "faults/crash_policy.hpp"
#include "faults/faulty_cas.hpp"
#include "proto/protocol.hpp"
#include "util/rng.hpp"
#include "util/spin_barrier.hpp"

namespace ff::runtime {

struct CrashTrialOutcome {
  std::vector<consensus::InputValue> inputs;
  std::vector<consensus::Decision> decisions;
  std::vector<std::uint32_t> crashes;  ///< per process
  consensus::Verdict verdict;
};

/// Runs one crash-instrumented consensus trial.  `policy` decides when a
/// crash point fires, `crash_budget` caps crashes per process, and
/// `stagger_seed` adds a small random pre-start spin per supervisor to
/// vary interleavings (0 = no stagger).  The protocol must be built from
/// a program with a recovery label when crash_budget > 0.
[[nodiscard]] inline CrashTrialOutcome run_crash_trial(
    proto::IrProtocol& protocol,
    const std::vector<consensus::InputValue>& inputs,
    faults::CrashPolicy& policy, std::uint32_t crash_budget,
    std::uint64_t stagger_seed = 0) {
  const auto n = static_cast<std::uint32_t>(inputs.size());
  std::vector<consensus::Decision> decisions(n);
  std::vector<std::uint32_t> crashes(n, 0);
  protocol.enable_crashes(crash_budget > 0 ? &policy : nullptr, crash_budget,
                          n);
  util::SpinBarrier barrier(n);

  std::vector<std::thread> supervisors;
  supervisors.reserve(n);
  for (std::uint32_t pid = 0; pid < n; ++pid) {
    supervisors.emplace_back([&, pid] {
      std::uint64_t spins = 0;
      if (stagger_seed != 0) {
        spins = util::mix64(stagger_seed ^ pid) % 256;
      }
      barrier.arrive_and_wait();
      for (std::uint64_t i = 0; i < spins; ++i) {
        std::this_thread::yield();
      }
      // Restart loop, bounded by the crash budget: the protocol stops
      // offering crash points once `pid` has crashed crash_budget times.
      while (crashes[pid] <= crash_budget) {
        bool crashed = false;
        std::thread worker([&] {
          try {
            decisions[pid] = protocol.decide(inputs[pid], pid);
          } catch (const faults::CrashError&) {
            crashed = true;
          } catch (const faults::NonresponsiveError&) {
            decisions[pid] = consensus::Decision::undecided(0);
          }
        });
        worker.join();
        if (!crashed) return;
        ++crashes[pid];
      }
    });
  }
  for (auto& t : supervisors) t.join();

  CrashTrialOutcome outcome;
  outcome.inputs = inputs;
  outcome.decisions = std::move(decisions);
  outcome.crashes = std::move(crashes);
  outcome.verdict = consensus::verify_consensus(inputs, outcome.decisions);
  return outcome;
}

}  // namespace ff::runtime
