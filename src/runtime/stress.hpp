// Randomized stress campaigns: many real-thread consensus trials with
// varying inputs and schedule jitter, aggregated into a report.
//
// A campaign is the workhorse of the E-series experiments at parameter
// sizes the exhaustive simulator cannot reach.  Correctness experiments
// assert `report.all_ok()`; impossibility experiments instead *search*
// for violations and report how quickly they surface.
//
// Seed stability: every pseudo-random input of a campaign — the per-trial
// proposal values (make_inputs) and the per-thread start stagger — is a
// pure function of (options.seed, trial index).  Two campaigns with
// identical StressOptions therefore present identical stimuli to the
// protocol; what can still vary between runs is only the OS-level thread
// interleaving inside a trial.  For protocols whose verdict and per-call
// step counts are schedule-independent (e.g. single-CAS: exactly one CAS
// per decide()), the full StressReport — counters and step statistics —
// is reproduced exactly; tests/test_determinism.cpp pins this guarantee.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "consensus/consensus.hpp"
#include "runtime/budget.hpp"
#include "runtime/thread_runner.hpp"
#include "util/stats.hpp"

namespace ff::runtime {

struct StressOptions {
  std::uint32_t processes = 2;
  /// Campaign budget (shared abstraction — see runtime/budget.hpp):
  /// units are trials here; the deadline, if set, is polled between
  /// trials.  A deadline-truncated campaign simply reports fewer trials.
  BudgetSpec budget{.max_units = 100, .max_millis = 0};
  std::uint64_t seed = 0xc0ffee;
  /// Stop early once this many violations have been found (0 = never).
  std::uint64_t stop_after_violations = 0;
};

struct StressReport {
  std::uint64_t trials = 0;
  std::uint64_t ok = 0;
  std::uint64_t inconsistent = 0;
  std::uint64_t invalid = 0;
  std::uint64_t undecided = 0;
  util::StreamingStats steps_per_process;
  /// Trial index of the first violation, if any.
  std::optional<std::uint64_t> first_violation;

  [[nodiscard]] bool all_ok() const noexcept { return ok == trials; }
  [[nodiscard]] std::uint64_t violations() const noexcept {
    return trials - ok;
  }
  [[nodiscard]] double ok_rate() const noexcept {
    return trials == 0 ? 1.0
                       : static_cast<double>(ok) / static_cast<double>(trials);
  }
};

/// Called before each trial, after protocol.reset(); use it to reset
/// budgets, policies and trace sinks.
using TrialSetupHook = std::function<void(std::uint64_t trial)>;
/// Called after each trial with the outcome; use it for trace checks.
using TrialCheckHook =
    std::function<void(std::uint64_t trial, const TrialOutcome& outcome)>;

[[nodiscard]] inline StressReport run_stress(consensus::Protocol& protocol,
                                             const StressOptions& options,
                                             const TrialSetupHook& setup = {},
                                             const TrialCheckHook& check = {}) {
  StressReport report;
  BudgetMeter meter(options.budget);
  for (std::uint64_t trial = 0; !meter.expired() && meter.charge(1);
       ++trial) {
    protocol.reset();
    if (setup) setup(trial);

    const auto inputs =
        make_inputs(options.processes, trial, options.seed);
    const std::uint64_t stagger = util::mix64(options.seed ^ (trial + 1));
    const TrialOutcome outcome = run_trial(protocol, inputs, stagger);

    ++report.trials;
    if (outcome.verdict.ok()) {
      ++report.ok;
    } else {
      if (!outcome.verdict.all_decided) ++report.undecided;
      if (!outcome.verdict.consistent) ++report.inconsistent;
      if (!outcome.verdict.valid) ++report.invalid;
      if (!report.first_violation) report.first_violation = trial;
    }
    for (const auto& d : outcome.decisions) {
      report.steps_per_process.add(static_cast<double>(d.cas_steps));
    }
    if (check) check(trial, outcome);
    if (options.stop_after_violations != 0 &&
        report.violations() >= options.stop_after_violations) {
      break;
    }
  }
  return report;
}

}  // namespace ff::runtime
