// ConsensusLog — a totally-ordered, wait-free append-only log where each
// slot is decided by a consensus instance built from (possibly faulty)
// CAS objects.
//
// This is the practical face of Herlihy's universality result the paper
// leans on ("consensus ... can be used to implement any wait-free
// object", §1): given fault-tolerant consensus, any object can be
// replicated by funnelling its operations through the log.  The log is
// the substrate for universal::Replicated<T>.
//
// Concurrency model: any number of threads (one ProcessId each, within
// the capacity the slot protocols were built for) call append()
// concurrently.  A thread proposes its tagged operation at successive
// slots until it wins one; every slot it passes is already decided, so
// the caller learns the full prefix order as a side effect.
//
// Wait-freedom: each decide() is wait-free and a thread wins a slot
// after at most <threads> losses in the worst case — losing slot i means
// some other proposal won slot i, and each competitor can beat the
// caller at most once before the caller's proposal is re-submitted
// first at the next free slot... formally the construction inherits the
// standard lock-free-to-wait-free caveat: we bound append() by the log
// capacity, which is explicit here.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <stdexcept>
#include <vector>

#include "consensus/consensus.hpp"

namespace ff::universal {

/// A log entry payload.  32 payload bits are available to applications;
/// the remaining bits carry the (pid, sequence) tag that makes every
/// proposal unique, so a proposer can recognize its own win.
struct Operation {
  objects::ProcessId pid = 0;
  std::uint32_t seq = 0;       ///< proposer-local sequence number
  std::uint32_t payload = 0;   ///< application data

  /// [pid:16 | seq:16 | payload:32] — stays clear of the reserved ⊥ and
  /// the staged protocol's forbidden top values.
  [[nodiscard]] consensus::InputValue pack() const {
    return (static_cast<consensus::InputValue>(pid & 0xFFFF) << 48) |
           (static_cast<consensus::InputValue>(seq & 0xFFFF) << 32) |
           payload;
  }
  static Operation unpack(consensus::InputValue v) {
    return Operation{static_cast<objects::ProcessId>((v >> 48) & 0xFFFF),
                     static_cast<std::uint32_t>((v >> 32) & 0xFFFF),
                     static_cast<std::uint32_t>(v & 0xFFFFFFFF)};
  }

  friend bool operator==(const Operation&, const Operation&) = default;
};

class ConsensusLog {
 public:
  /// Builds the consensus instance deciding slot `index`.  The factory
  /// owns fault injection choices (which protocol, which fault kind,
  /// which budget); the log only sequences.
  using SlotFactory =
      std::function<std::unique_ptr<consensus::Protocol>(std::uint64_t index)>;

  ConsensusLog(std::uint64_t capacity, const SlotFactory& make_slot)
      : decided_(capacity) {
    slots_.reserve(capacity);
    for (std::uint64_t i = 0; i < capacity; ++i) {
      slots_.push_back(make_slot(i));
      decided_[i].store(kUndecided, std::memory_order_relaxed);
    }
  }

  struct AppendResult {
    std::uint64_t index = 0;   ///< slot the caller's operation won
    std::uint64_t losses = 0;  ///< slots lost to competitors on the way
  };

  /// Appends `op` (tagged with op.pid/op.seq for uniqueness): proposes at
  /// successive slots starting from this thread's cursor until it wins.
  /// Throws std::length_error when the log is full.
  AppendResult append(const Operation& op, std::uint64_t& cursor) {
    AppendResult result;
    const consensus::InputValue mine = op.pack();
    for (std::uint64_t slot = cursor; slot < slots_.size(); ++slot) {
      const auto decision = slots_[slot]->decide(mine, op.pid);
      if (!decision.decided) {
        throw std::runtime_error("consensus gave up (step budget)");
      }
      publish(slot, decision.value);
      if (decision.value == mine) {
        cursor = slot + 1;
        result.index = slot;
        return result;
      }
      ++result.losses;
    }
    throw std::length_error("ConsensusLog capacity exhausted");
  }

  /// Learns the decided value of `index` (participating with `pid` and a
  /// neutral never-winning proposal is unnecessary: any proposal works,
  /// since a decided slot returns its decided value to everyone).
  Operation learn(std::uint64_t index, objects::ProcessId pid) {
    if (const auto cached = decided_value(index)) {
      return Operation::unpack(*cached);
    }
    const Operation probe{pid, 0xFFFF, 0xFFFFFFFF};
    const auto decision = slots_.at(index)->decide(probe.pack(), pid);
    if (!decision.decided) {
      throw std::runtime_error("consensus gave up (step budget)");
    }
    publish(index, decision.value);
    return Operation::unpack(decision.value);
  }

  /// Decided value if this replica has already observed slot `index`.
  [[nodiscard]] std::optional<consensus::InputValue> decided_value(
      std::uint64_t index) const {
    const std::uint64_t word =
        decided_.at(index).load(std::memory_order_acquire);
    if (word == kUndecided) return std::nullopt;
    return word;
  }

  [[nodiscard]] std::uint64_t capacity() const noexcept {
    return slots_.size();
  }

  /// Highest decided prefix length observed so far (slots [0, n) known
  /// decided).  Monotone; may lag behind other threads' knowledge.
  [[nodiscard]] std::uint64_t known_prefix() const {
    std::uint64_t n = 0;
    while (n < decided_.size() &&
           decided_[n].load(std::memory_order_acquire) != kUndecided) {
      ++n;
    }
    return n;
  }

 private:
  static constexpr std::uint64_t kUndecided = ~std::uint64_t{0};

  void publish(std::uint64_t index, consensus::InputValue value) {
    decided_.at(index).store(value, std::memory_order_release);
  }

  std::vector<std::unique_ptr<consensus::Protocol>> slots_;
  // Cache of decided values (⊥-pattern = undecided).  Purely an
  // optimization/observation channel: correctness rests on the slots.
  // ff-lint: allow(R1): holds only values the slot already decided; a
  mutable std::vector<std::atomic<std::uint64_t>> decided_;
  // cache miss falls through to decide(), so no new behavior can appear.
};

}  // namespace ff::universal
