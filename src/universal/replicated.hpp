// Replicated<T> — a wait-free replicated object driven by a ConsensusLog
// (Herlihy's universal construction, practically packaged).
//
// T supplies the sequential object:
//   struct Counter {
//     using State = std::int64_t;
//     static State initial();
//     static void apply(State& state, std::uint32_t payload);
//   };
//
// Each participating thread owns a Handle (its replica + log cursor).
// Handle::apply(payload) funnels the operation through the log and
// replays every decided operation, in log order, into the local replica —
// so all replicas evolve through the same state sequence regardless of
// scheduling or CAS faults below.  Handle::state() replays the currently
// known decided prefix without appending.
#pragma once

#include <algorithm>
#include <cstdint>

#include "universal/log.hpp"

namespace ff::universal {

template <typename T>
class Replicated {
 public:
  using State = typename T::State;

  Replicated(std::uint64_t capacity,
             const ConsensusLog::SlotFactory& make_slot)
      : log_(capacity, make_slot) {}

  class Handle {
   public:
    Handle(Replicated& owner, objects::ProcessId pid)
        : owner_(owner), pid_(pid), state_(T::initial()) {}

    /// Applies `payload` to the replicated object; returns the state
    /// right after this operation took effect (in the agreed total
    /// order).
    State apply(std::uint32_t payload) {
      Operation op{pid_, seq_++, payload};
      std::uint64_t probe_cursor = cursor_;
      const auto result = owner_.log_.append(op, probe_cursor);
      replay_upto(result.index + 1);
      return state_;
    }

    /// Replays every operation this replica knows to be decided and
    /// returns the resulting state (a consistent-prefix read).
    State state() {
      replay_upto(owner_.log_.known_prefix());
      return state_;
    }

    [[nodiscard]] objects::ProcessId pid() const noexcept { return pid_; }
    [[nodiscard]] std::uint64_t applied() const noexcept { return applied_; }

   private:
    void replay_upto(std::uint64_t end) {
      while (applied_ < end) {
        const Operation op = owner_.log_.learn(applied_, pid_);
        T::apply(state_, op.payload);
        ++applied_;
      }
      cursor_ = std::max(cursor_, applied_);
    }

    Replicated& owner_;
    objects::ProcessId pid_;
    std::uint32_t seq_ = 0;
    std::uint64_t cursor_ = 0;   ///< next slot to propose at
    std::uint64_t applied_ = 0;  ///< log prefix applied to state_
    State state_;
  };

  [[nodiscard]] Handle handle(objects::ProcessId pid) {
    return Handle(*this, pid);
  }

  [[nodiscard]] ConsensusLog& log() noexcept { return log_; }

 private:
  ConsensusLog log_;
};

}  // namespace ff::universal
