// Value representation for shared objects.
//
// The paper's protocols operate on single-word CAS registers holding either
// the distinguished initial value ⊥ or a process input value; the staged
// protocol of Figure 3 stores ⟨value, stage⟩ pairs.  We model both as one
// 64-bit word so every object is a genuine single-word CAS target:
//
//   * `Value`       — a 64-bit word where the all-ones pattern is reserved
//                     for ⊥ (the paper assumes inputs differ from ⊥).
//   * `StagedValue` — ⟨value:32, stage:32⟩ packed into a Value, with
//                     ⟨⊥⟩ represented by the reserved Value::bottom().
#pragma once

#include <compare>
#include <cstdint>
#include <string>

namespace ff::model {

/// Raw machine word stored in a CAS register.
using Word = std::uint64_t;

/// A shared-object value: either ⊥ or an application value.
class Value {
 public:
  /// ⊥ — the distinguished initial value (Section 2).
  static constexpr Value bottom() noexcept { return Value(kBottomRaw); }

  /// An application value; must not collide with the ⊥ encoding.
  static constexpr Value of(Word v) noexcept { return Value(v); }

  constexpr Value() noexcept : raw_(kBottomRaw) {}

  [[nodiscard]] constexpr bool is_bottom() const noexcept {
    return raw_ == kBottomRaw;
  }
  [[nodiscard]] constexpr Word raw() const noexcept { return raw_; }

  friend constexpr bool operator==(Value, Value) noexcept = default;
  friend constexpr auto operator<=>(Value, Value) noexcept = default;

  [[nodiscard]] std::string to_string() const {
    return is_bottom() ? "\xE2\x8A\xA5" : std::to_string(raw_);
  }

 private:
  static constexpr Word kBottomRaw = ~Word{0};

  explicit constexpr Value(Word raw) noexcept : raw_(raw) {}

  Word raw_;
};

/// ⟨value, stage⟩ pair for the staged protocol (Figure 3), packed so it
/// fits a single CAS word.  Values are limited to 32 bits here, which is
/// ample for consensus inputs; stage is bounded by maxStage = t·(4f+f²).
class StagedValue {
 public:
  constexpr StagedValue() noexcept = default;
  constexpr StagedValue(std::uint32_t value, std::uint32_t stage) noexcept
      : value_(value), stage_(stage) {}

  [[nodiscard]] constexpr std::uint32_t value() const noexcept { return value_; }
  [[nodiscard]] constexpr std::uint32_t stage() const noexcept { return stage_; }

  /// Packs into a shared-object Value.  The pair ⟨0xFFFFFFFF,0xFFFFFFFF⟩
  /// would collide with ⊥; stages never reach 2^32-1 in practice and we
  /// forbid value 0xFFFFFFFF at the protocol boundary.
  [[nodiscard]] constexpr Value pack() const noexcept {
    return Value::of((static_cast<Word>(stage_) << 32) |
                     static_cast<Word>(value_));
  }

  /// Unpacks; the caller must have checked !v.is_bottom().
  static constexpr StagedValue unpack(Value v) noexcept {
    return StagedValue(static_cast<std::uint32_t>(v.raw() & 0xFFFFFFFFULL),
                       static_cast<std::uint32_t>(v.raw() >> 32));
  }

  friend constexpr bool operator==(StagedValue, StagedValue) noexcept = default;

  [[nodiscard]] std::string to_string() const {
    return "<" + std::to_string(value_) + "," + std::to_string(stage_) + ">";
  }

 private:
  std::uint32_t value_ = 0;
  std::uint32_t stage_ = 0;
};

}  // namespace ff::model
