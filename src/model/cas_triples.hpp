// The CAS object's Hoare triple and the paper's fault characterizations,
// expressed in the generic hoare.hpp framework.
//
// This is the bridge between the formal layer (assertions) and the
// executable layer (cas_semantics.hpp): a ready-made TripleChecker whose
// classifications agree with model::classify.
#pragma once

#include "model/cas_semantics.hpp"
#include "model/hoare.hpp"

namespace ff::model {

using CasTripleChecker = TripleChecker<CasCall, CasObservation>;

/// Indices of the registered Φ′ characterizations in make_cas_checker().
struct CasFaultIndex {
  std::size_t overriding;
  std::size_t silent;
  std::size_t invisible;
  std::size_t arbitrary;
};

/// Builds the checker with Ψ = true (CAS is total: any register content and
/// any inputs are legal) and Φ per the sequential specification, plus the
/// four responsive fault characterizations of Sections 3.3-3.4 in
/// most-specific-first order.
inline CasTripleChecker make_cas_checker(CasFaultIndex* index = nullptr) {
  Triple<CasCall, CasObservation> triple{
      "CAS",
      /*pre=*/[](const CasCall&, const CasObservation&) { return true; },
      /*post=*/
      [](const CasCall& call, const CasObservation& obs) {
        return satisfies_phi(obs, call);
      }};
  CasTripleChecker checker(std::move(triple));

  CasFaultIndex idx{};
  idx.overriding = checker.add_fault(
      {"overriding", [](const CasCall& call, const CasObservation& obs) {
         return satisfies_phi_prime(FaultKind::kOverriding, obs, call);
       }});
  idx.silent = checker.add_fault(
      {"silent", [](const CasCall& call, const CasObservation& obs) {
         return satisfies_phi_prime(FaultKind::kSilent, obs, call);
       }});
  idx.invisible = checker.add_fault(
      {"invisible", [](const CasCall& call, const CasObservation& obs) {
         return satisfies_phi_prime(FaultKind::kInvisible, obs, call);
       }});
  idx.arbitrary = checker.add_fault(
      {"arbitrary", [](const CasCall& call, const CasObservation& obs) {
         return satisfies_phi_prime(FaultKind::kArbitrary, obs, call);
       }});
  if (index != nullptr) *index = idx;
  return checker;
}

}  // namespace ff::model
