// (f, t, n)-tolerance specifications (Definition 3) and the staged
// protocol's stage bound (Theorem 6).
#pragma once

#include <cstdint>
#include <limits>
#include <string>

namespace ff::model {

/// Sentinel for an unbounded parameter (t = ∞ or n = ∞ in Definition 3).
inline constexpr std::uint32_t kUnbounded =
    std::numeric_limits<std::uint32_t>::max();

/// An (f, t, n)-tolerance claim: correct in any execution with at most
/// f faulty objects, at most t faults per faulty object, and at most n
/// processes.  (f,t)-tolerant ≡ (f,t,∞); f-tolerant ≡ (f,∞,∞).
struct ToleranceSpec {
  std::uint32_t f = 0;           ///< max faulty objects
  std::uint32_t t = kUnbounded;  ///< max faults per faulty object
  std::uint32_t n = kUnbounded;  ///< max processes

  [[nodiscard]] constexpr bool bounded_faults() const noexcept {
    return t != kUnbounded;
  }
  [[nodiscard]] constexpr bool bounded_processes() const noexcept {
    return n != kUnbounded;
  }

  /// Whether an execution with the given actual parameters falls within
  /// this claim (i.e. the claim must hold for it).
  [[nodiscard]] constexpr bool admits(std::uint32_t faulty_objects,
                                      std::uint32_t faults_per_object,
                                      std::uint32_t processes) const noexcept {
    return faulty_objects <= f &&
           (t == kUnbounded || faults_per_object <= t) &&
           (n == kUnbounded || processes <= n);
  }

  [[nodiscard]] std::string to_string() const {
    auto part = [](std::uint32_t v) {
      return v == kUnbounded ? std::string("inf") : std::to_string(v);
    };
    return "(" + std::to_string(f) + "," + part(t) + "," + part(n) + ")";
  }

  friend constexpr bool operator==(const ToleranceSpec&,
                                   const ToleranceSpec&) noexcept = default;
};

/// maxStage = t · (4f + f²) — the stage budget that Theorem 6 proves
/// sufficient for the Figure 3 protocol.
[[nodiscard]] constexpr std::uint64_t staged_max_stage(
    std::uint32_t f, std::uint32_t t) noexcept {
  const auto f64 = static_cast<std::uint64_t>(f);
  return static_cast<std::uint64_t>(t) * (4 * f64 + f64 * f64);
}

/// Total fault budget in an (f, t)-bounded execution (Observation 10 uses
/// the fact that at most t·f faults may occur overall).
[[nodiscard]] constexpr std::uint64_t total_fault_budget(
    std::uint32_t f, std::uint32_t t) noexcept {
  return static_cast<std::uint64_t>(f) * static_cast<std::uint64_t>(t);
}

}  // namespace ff::model
