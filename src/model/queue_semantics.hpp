// FIFO queue semantics and the k-relaxation "fault" — the §6 connection:
// relaxed data structures (quasi-linearizability, SprayList-style
// out-of-order pops) are a special case of the functional-fault model.
// A relaxed dequeue violates the FIFO postcondition Φ but satisfies the
// structured deviation
//
//   Φ′_k : the returned element is one of the first k+1 queued elements
//
// which is exactly an ⟨dequeue, Φ′⟩-fault in Definition 1's sense.  The
// difference is intent (performance vs malfunction), not structure — and
// the same machinery (policies, budgets, classification) applies.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "model/fault_kind.hpp"

namespace ff::model {

using QueueElement = std::uint64_t;

/// The dequeue operation takes no inputs; its precondition Ψ for the
/// value-returning triple is "the queue is non-empty".
struct DequeueCall {};

/// Observation of one dequeue at its linearization point: the queue's
/// prefix (up to some window) before the operation and the element
/// returned (nullopt = reported empty).
struct DequeueObservation {
  /// Front of the queue on entry, head first (possibly truncated to the
  /// checker's window; must include at least min(size, k+1) elements).
  std::vector<QueueElement> prefix_before;
  std::optional<QueueElement> returned;
};

/// Φ — strict FIFO: a non-empty queue returns exactly its head.
[[nodiscard]] inline bool dequeue_satisfies_phi(
    const DequeueObservation& obs) {
  if (obs.prefix_before.empty()) return !obs.returned.has_value();
  return obs.returned.has_value() &&
         *obs.returned == obs.prefix_before.front();
}

/// Φ′_k — k-relaxed FIFO: a non-empty queue returns one of the first
/// k+1 elements (k = 0 degenerates to Φ).
[[nodiscard]] inline bool dequeue_satisfies_phi_prime(
    const DequeueObservation& obs, std::uint32_t k) {
  if (obs.prefix_before.empty()) return !obs.returned.has_value();
  if (!obs.returned.has_value()) return false;
  const std::size_t window =
      std::min<std::size_t>(obs.prefix_before.size(), k + 1);
  for (std::size_t i = 0; i < window; ++i) {
    if (obs.prefix_before[i] == *obs.returned) return true;
  }
  return false;
}

/// Relaxation distance of an observation: position of the returned
/// element in the pre-state (0 = head = Φ held), or nullopt when the
/// returned element was not in the observed prefix at all (an
/// unstructured fault).
[[nodiscard]] inline std::optional<std::uint32_t> relaxation_distance(
    const DequeueObservation& obs) {
  if (!obs.returned.has_value()) {
    return obs.prefix_before.empty() ? std::make_optional(0u)
                                     : std::nullopt;
  }
  for (std::size_t i = 0; i < obs.prefix_before.size(); ++i) {
    if (obs.prefix_before[i] == *obs.returned) {
      return static_cast<std::uint32_t>(i);
    }
  }
  return std::nullopt;
}

}  // namespace ff::model
