// Taxonomy of CAS functional faults studied in the paper (Sections 3.3-3.4)
// plus the prior-work data-fault model (Section 3.1) used for comparison.
#pragma once

#include <cstdint>
#include <string_view>

namespace ff::model {

enum class FaultKind : std::uint8_t {
  /// Correct execution — no fault.
  kNone = 0,
  /// §3.3 Overriding: the new value is written even when the register's
  /// content differs from the expected value.  Φ′: R = val ∧ old = R′.
  kOverriding,
  /// §3.4 Silent: the new value is NOT written even when the content
  /// equals the expected value.  Φ′: R = R′ ∧ old = R′.
  kSilent,
  /// §3.4 Invisible: the returned old value is wrong (not the original
  /// register content).  Reducible to a data fault.
  kInvisible,
  /// §3.4 Arbitrary: an arbitrary value is written regardless of inputs.
  /// Comparable to the responsive-arbitrary data fault of Jayanti et al.
  kArbitrary,
  /// §3.4 Nonresponsive: the operation never returns.  Modelled as an
  /// operation that parks the caller (simulated; never used on real
  /// threads without a step budget).
  kNonresponsive,
  /// §3.1 Data fault (Afek et al.): the register content is corrupted at
  /// an arbitrary moment, independent of any operation.
  kDataCorruption,
};

[[nodiscard]] constexpr std::string_view to_string(FaultKind k) noexcept {
  switch (k) {
    case FaultKind::kNone: return "none";
    case FaultKind::kOverriding: return "overriding";
    case FaultKind::kSilent: return "silent";
    case FaultKind::kInvisible: return "invisible";
    case FaultKind::kArbitrary: return "arbitrary";
    case FaultKind::kNonresponsive: return "nonresponsive";
    case FaultKind::kDataCorruption: return "data-corruption";
  }
  return "unknown";
}

/// Responsive faults always return from the operation (Jayanti et al.
/// classification, §3.1).  Only the nonresponsive fault is not.
[[nodiscard]] constexpr bool is_responsive(FaultKind k) noexcept {
  return k != FaultKind::kNonresponsive;
}

/// Structured faults adhere to specific deviating postconditions Φ′ and are
/// therefore candidates for algorithmic tolerance (Definition 1).  The
/// arbitrary fault and data corruption admit any outcome.
[[nodiscard]] constexpr bool is_structured(FaultKind k) noexcept {
  switch (k) {
    case FaultKind::kNone:
    case FaultKind::kOverriding:
    case FaultKind::kSilent:
    case FaultKind::kInvisible:
      return true;
    case FaultKind::kArbitrary:
    case FaultKind::kNonresponsive:
    case FaultKind::kDataCorruption:
      return false;
  }
  return false;
}

/// Whether the fault manifests only during an operation invocation
/// (functional fault, Definition 1) as opposed to at arbitrary execution
/// points (data fault).
[[nodiscard]] constexpr bool is_functional(FaultKind k) noexcept {
  return k != FaultKind::kDataCorruption && k != FaultKind::kNone;
}

}  // namespace ff::model
