// Generic Hoare-triple machinery (Hoare [27]; paper Definitions 1 and 2).
//
// An operation's correctness conditions are a triple Ψ{O}Φ.  A functional
// fault ⟨O,Φ′⟩ occurs at a step when Ψ held on entry, Φ failed on return,
// and the deviating postcondition Φ′ held.  This header provides the
// executable counterparts: assertions over (entry state, call, exit
// observation), named triples, fault characterizations, and a classifier
// that maps an observed step to the matching characterization.
//
// The CAS instantiation lives in cas_semantics.hpp; this layer is the
// object-generic formulation so other primitives (test&set, fetch&add,
// relaxed queues, ...) can be plugged into the same framework.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace ff::model {

/// An assertion over one operation execution.  `Call` carries the inputs,
/// `Obs` the entry state, exit state and output (whatever the object type
/// exposes).  Assertions must be pure.
template <typename Call, typename Obs>
using Assertion = std::function<bool(const Call&, const Obs&)>;

/// Ψ{O}Φ — a named operation with pre- and postconditions.
template <typename Call, typename Obs>
struct Triple {
  std::string operation;
  Assertion<Call, Obs> pre;   ///< Ψ, evaluated on the entry state
  Assertion<Call, Obs> post;  ///< Φ, evaluated on the exit observation
};

/// ⟨O, Φ′⟩ — a named deviating postcondition characterizing one fault.
template <typename Call, typename Obs>
struct FaultCharacterization {
  std::string name;
  Assertion<Call, Obs> phi_prime;
};

/// Verdict for one observed step (Definition 1 applied operationally).
enum class StepVerdict {
  kCorrect,            ///< Ψ held and Φ held
  kPreconditionUnmet,  ///< Ψ did not hold; the triple says nothing
  kCharacterized,      ///< Ψ held, Φ failed, some registered Φ′ held
  kUnstructured,       ///< Ψ held, Φ failed, no registered Φ′ held
};

template <typename Call, typename Obs>
struct StepClassification {
  StepVerdict verdict;
  /// Index into the checker's characterization list when kCharacterized.
  std::optional<std::size_t> characterization;
};

/// Classifies observed operation executions against a triple and a set of
/// fault characterizations.  Characterizations are tested in registration
/// order, so register the most specific first.
template <typename Call, typename Obs>
class TripleChecker {
 public:
  explicit TripleChecker(Triple<Call, Obs> triple)
      : triple_(std::move(triple)) {}

  std::size_t add_fault(FaultCharacterization<Call, Obs> fc) {
    faults_.push_back(std::move(fc));
    return faults_.size() - 1;
  }

  [[nodiscard]] const Triple<Call, Obs>& triple() const noexcept {
    return triple_;
  }
  [[nodiscard]] const std::vector<FaultCharacterization<Call, Obs>>& faults()
      const noexcept {
    return faults_;
  }

  [[nodiscard]] StepClassification<Call, Obs> classify(
      const Call& call, const Obs& obs) const {
    if (triple_.pre && !triple_.pre(call, obs)) {
      return {StepVerdict::kPreconditionUnmet, std::nullopt};
    }
    if (triple_.post(call, obs)) {
      return {StepVerdict::kCorrect, std::nullopt};
    }
    for (std::size_t i = 0; i < faults_.size(); ++i) {
      if (faults_[i].phi_prime(call, obs)) {
        return {StepVerdict::kCharacterized, i};
      }
    }
    return {StepVerdict::kUnstructured, std::nullopt};
  }

 private:
  Triple<Call, Obs> triple_;
  std::vector<FaultCharacterization<Call, Obs>> faults_;
};

}  // namespace ff::model
