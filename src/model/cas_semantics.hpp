// Sequential specification of the CAS operation and the deviating
// postconditions Φ′ of each functional fault kind (Sections 2, 3.3, 3.4).
//
// These evaluators are the executable form of the paper's Hoare triples:
// they let the verification layer check, for every observed operation,
// whether the standard postcondition Φ held, and if not, which structured
// fault the observation is consistent with (Definition 1).
#pragma once

#include "model/fault_kind.hpp"
#include "model/value.hpp"

namespace ff::model {

/// Input parameters of one CAS invocation: old ← CAS(O, exp, val).
struct CasCall {
  Value expected;
  Value desired;

  friend constexpr bool operator==(const CasCall&, const CasCall&) noexcept =
      default;
};

/// Observed effect of one CAS invocation: register content before (R′) and
/// after (R) the operation, and the returned old value.
struct CasObservation {
  Value before;    ///< R′ — register content on entry
  Value after;     ///< R  — register content on return
  Value returned;  ///< old — the operation's output

  friend constexpr bool operator==(const CasObservation&,
                                   const CasObservation&) noexcept = default;
};

/// Result of applying the *correct* sequential specification.
struct CasEffect {
  Value after;
  Value returned;
  bool success;  ///< the new value was written
};

/// Sequential specification:
///   R′ = exp ? (R = val ∧ old = R′) : (R = R′ ∧ old = R′)
[[nodiscard]] constexpr CasEffect cas_apply(Value before,
                                            const CasCall& call) noexcept {
  if (before == call.expected) {
    return CasEffect{call.desired, before, true};
  }
  return CasEffect{before, before, false};
}

/// Effect of a CAS that suffers the overriding fault (§3.3):
///   Φ′: R = val ∧ old = R′  — the write happens unconditionally.
[[nodiscard]] constexpr CasEffect cas_apply_overriding(
    Value before, const CasCall& call) noexcept {
  return CasEffect{call.desired, before, true};
}

/// Effect of a CAS that suffers the silent fault (§3.4):
///   Φ′: R = R′ ∧ old = R′  — the write never happens.
[[nodiscard]] constexpr CasEffect cas_apply_silent(Value before,
                                                   const CasCall&) noexcept {
  return CasEffect{before, before, false};
}

/// Standard postcondition Φ of CAS.
[[nodiscard]] constexpr bool satisfies_phi(const CasObservation& obs,
                                           const CasCall& call) noexcept {
  if (obs.before == call.expected) {
    return obs.after == call.desired && obs.returned == obs.before;
  }
  return obs.after == obs.before && obs.returned == obs.before;
}

/// Deviating postcondition Φ′ of the given fault kind.  For kNone this is
/// Φ itself.  Arbitrary and data-corruption faults admit any observation
/// with a correct return value and any register content, per §3.4/§3.1.
[[nodiscard]] constexpr bool satisfies_phi_prime(
    FaultKind kind, const CasObservation& obs, const CasCall& call) noexcept {
  switch (kind) {
    case FaultKind::kNone:
      return satisfies_phi(obs, call);
    case FaultKind::kOverriding:
      return obs.after == call.desired && obs.returned == obs.before;
    case FaultKind::kSilent:
      return obs.after == obs.before && obs.returned == obs.before;
    case FaultKind::kInvisible:
      // Register behaves per spec; only the output deviates.
      return obs.after == cas_apply(obs.before, call).after;
    case FaultKind::kArbitrary:
      return obs.returned == obs.before;  // any written value allowed
    case FaultKind::kNonresponsive:
      return false;  // a responsive observation never matches
    case FaultKind::kDataCorruption:
      return true;  // arbitrary corruption admits anything
  }
  return false;
}

/// Classifies an observation against the fault taxonomy: returns kNone when
/// the standard postcondition held, otherwise the most specific structured
/// fault whose Φ′ the observation satisfies, falling back to kArbitrary /
/// kDataCorruption for unstructured deviations.
[[nodiscard]] constexpr FaultKind classify(const CasObservation& obs,
                                           const CasCall& call) noexcept {
  if (satisfies_phi(obs, call)) return FaultKind::kNone;
  // Ordered from most to least specific.
  if (obs.returned == obs.before) {
    if (satisfies_phi_prime(FaultKind::kOverriding, obs, call)) {
      return FaultKind::kOverriding;
    }
    if (satisfies_phi_prime(FaultKind::kSilent, obs, call)) {
      return FaultKind::kSilent;
    }
    return FaultKind::kArbitrary;
  }
  if (satisfies_phi_prime(FaultKind::kInvisible, obs, call)) {
    return FaultKind::kInvisible;
  }
  return FaultKind::kDataCorruption;
}

}  // namespace ff::model
