// Sequential specification and functional faults of fetch-and-add —
// the paper's future-work direction instantiated (§7: "examine other
// widely used functions with natural faults"; the introduction's own
// example of a functional fault is "a carry evaluation is wrong for an
// addition operation").
//
// Faults modelled:
//   * off-by-one (carry fault):  Φ′: |R − (R′+d)| = 1 ∧ old = R′ —
//     a single broken carry perturbs the stored sum by exactly ±1 while
//     the returned old value stays correct.  Structured and bounded, so
//     constructions can reason about accumulated drift.
//   * silent:    Φ′: R = R′ ∧ old = R′ — the addition is dropped.
//   * invisible: register per spec, returned old corrupted.
#pragma once

#include <cstdint>

#include "model/fault_kind.hpp"

namespace ff::model {

/// Counters are signed machine words; wrap-around is defined (two's
/// complement via unsigned arithmetic).
using CounterValue = std::int64_t;

struct FaaCall {
  CounterValue delta = 0;

  friend constexpr bool operator==(const FaaCall&, const FaaCall&) noexcept =
      default;
};

struct FaaObservation {
  CounterValue before = 0;    ///< R′
  CounterValue after = 0;     ///< R
  CounterValue returned = 0;  ///< old

  friend constexpr bool operator==(const FaaObservation&,
                                   const FaaObservation&) noexcept = default;
};

/// Standard postcondition Φ: R = R′ + d ∧ old = R′.
[[nodiscard]] constexpr bool faa_satisfies_phi(const FaaObservation& obs,
                                               const FaaCall& call) noexcept {
  return obs.after == obs.before + call.delta && obs.returned == obs.before;
}

/// Deviating postconditions Φ′ per fault kind.  kArbitrary admits any
/// stored value with a correct old; kDataCorruption admits anything.
[[nodiscard]] constexpr bool faa_satisfies_phi_prime(
    FaultKind kind, const FaaObservation& obs, const FaaCall& call) noexcept {
  switch (kind) {
    case FaultKind::kNone:
      return faa_satisfies_phi(obs, call);
    case FaultKind::kOverriding: {
      // For fetch&add we read "overriding" as the carry/off-by-one fault:
      // the sum lands one off in either direction.
      const CounterValue err = obs.after - (obs.before + call.delta);
      return (err == 1 || err == -1) && obs.returned == obs.before;
    }
    case FaultKind::kSilent:
      return obs.after == obs.before && obs.returned == obs.before;
    case FaultKind::kInvisible:
      return obs.after == obs.before + call.delta;
    case FaultKind::kArbitrary:
      return obs.returned == obs.before;
    case FaultKind::kNonresponsive:
      return false;
    case FaultKind::kDataCorruption:
      return true;
  }
  return false;
}

/// Classifies an observation (most specific structured fault first).
[[nodiscard]] constexpr FaultKind faa_classify(const FaaObservation& obs,
                                               const FaaCall& call) noexcept {
  if (faa_satisfies_phi(obs, call)) return FaultKind::kNone;
  if (obs.returned == obs.before) {
    if (faa_satisfies_phi_prime(FaultKind::kOverriding, obs, call)) {
      return FaultKind::kOverriding;
    }
    if (faa_satisfies_phi_prime(FaultKind::kSilent, obs, call)) {
      return FaultKind::kSilent;
    }
    return FaultKind::kArbitrary;
  }
  if (faa_satisfies_phi_prime(FaultKind::kInvisible, obs, call)) {
    return FaultKind::kInvisible;
  }
  return FaultKind::kDataCorruption;
}

}  // namespace ff::model
