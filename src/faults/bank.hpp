// FaultyCasBank — a self-contained bank of FaultyCas objects sharing one
// policy, one (f, t) budget and one optional trace sink.
//
// Every experiment and application needs the same plumbing: allocate k
// objects with bank-local ids, wire them to a budget, hand out raw
// pointers, reset everything between trials.  This type owns that
// plumbing so call sites stay declarative.
#pragma once

#include <cassert>
#include <memory>
#include <vector>

#include "faults/budget.hpp"
#include "faults/faulty_cas.hpp"
#include "faults/policy.hpp"
#include "faults/trace.hpp"

namespace ff::faults {

class FaultyCasBank {
 public:
  struct Options {
    std::uint32_t objects = 1;                 ///< bank size k
    model::FaultKind kind = model::FaultKind::kOverriding;
    std::uint32_t f = 0;                       ///< max faulty objects
    std::uint32_t t = model::kUnbounded;       ///< faults per object
    /// Static designation of the faulty set; empty = dynamic (first f
    /// objects to fault become the faulty set).
    std::vector<objects::ObjectId> designated;
    /// Borrowed policy; nullptr = objects never fault.
    FaultPolicy* policy = nullptr;
    /// Borrowed sink; nullptr = no tracing.
    TraceSink* sink = nullptr;
    std::uint64_t seed = 0xBA9C;
  };

  explicit FaultyCasBank(Options options) : options_(std::move(options)) {
    assert(options_.f <= options_.objects);
    if (options_.f > 0) {
      if (options_.designated.empty()) {
        budget_ = std::make_unique<FaultBudget>(options_.objects,
                                                options_.f, options_.t);
      } else {
        budget_ = std::make_unique<FaultBudget>(
            options_.objects, options_.designated, options_.t);
      }
    }
    for (std::uint32_t i = 0; i < options_.objects; ++i) {
      objects_.push_back(std::make_unique<FaultyCas>(
          i, options_.kind, options_.policy, budget_.get(), options_.sink,
          options_.seed + i));
      raw_.push_back(objects_.back().get());
    }
  }

  /// Raw pointers in id order — the form protocol constructors take.
  [[nodiscard]] const std::vector<objects::CasObject*>& raw() const noexcept {
    return raw_;
  }
  [[nodiscard]] FaultyCas& object(std::uint32_t i) { return *objects_.at(i); }
  [[nodiscard]] std::uint32_t size() const noexcept {
    return options_.objects;
  }
  [[nodiscard]] FaultBudget* budget() noexcept { return budget_.get(); }

  /// Resets object contents and fault accounting for the next trial.
  void reset() {
    for (auto& object : objects_) object->reset();
    if (budget_) budget_->reset();
  }

 private:
  Options options_;
  std::unique_ptr<FaultBudget> budget_;
  std::vector<std::unique_ptr<FaultyCas>> objects_;
  std::vector<objects::CasObject*> raw_;
};

}  // namespace ff::faults
