// FaultyCasBank — a self-contained bank of FaultyCas objects sharing one
// policy, one (f, t) budget and one optional trace sink.
//
// Every experiment and application needs the same plumbing: allocate k
// objects with bank-local ids, wire them to a budget, hand out raw
// pointers, reset everything between trials.  This type owns that
// plumbing so call sites stay declarative.
#pragma once

#include <algorithm>
#include <cassert>
#include <memory>
#include <vector>

#include "faults/budget.hpp"
#include "faults/faulty_cas.hpp"
#include "faults/policy.hpp"
#include "faults/trace.hpp"

namespace ff::faults {

class FaultyCasBank {
 public:
  struct Options {
    std::uint32_t objects = 1;                 ///< bank size k
    model::FaultKind kind = model::FaultKind::kOverriding;
    std::uint32_t f = 0;                       ///< max faulty objects
    std::uint32_t t = model::kUnbounded;       ///< faults per object
    /// Static designation of the faulty set; empty = dynamic (first f
    /// objects to fault become the faulty set).
    std::vector<objects::ObjectId> designated;
    /// Borrowed policy; nullptr = objects never fault.
    FaultPolicy* policy = nullptr;
    /// Borrowed sink; nullptr = no tracing.
    TraceSink* sink = nullptr;
    std::uint64_t seed = 0xBA9C;
  };

  explicit FaultyCasBank(Options options) : options_(std::move(options)) {
    assert(options_.f <= options_.objects);
    if (options_.f > 0) {
      if (options_.designated.empty()) {
        budget_ = std::make_unique<FaultBudget>(options_.objects,
                                                options_.f, options_.t);
      } else {
        budget_ = std::make_unique<FaultBudget>(
            options_.objects, options_.designated, options_.t);
      }
    }
    for (std::uint32_t i = 0; i < options_.objects; ++i) {
      objects_.push_back(std::make_unique<FaultyCas>(
          i, options_.kind, options_.policy, budget_.get(), options_.sink,
          options_.seed + i));
      raw_.push_back(objects_.back().get());
    }
  }

  /// Raw pointers in id order — the form protocol constructors take.
  [[nodiscard]] const std::vector<objects::CasObject*>& raw() const noexcept {
    return raw_;
  }
  [[nodiscard]] FaultyCas& object(std::uint32_t i) { return *objects_.at(i); }
  [[nodiscard]] std::uint32_t size() const noexcept {
    return options_.objects;
  }
  [[nodiscard]] FaultBudget* budget() noexcept { return budget_.get(); }

  /// Resets object contents and fault accounting for the next trial.
  void reset() {
    for (auto& object : objects_) object->reset();
    if (budget_) budget_->reset();
  }

  /// Budget-slot usage profile, sorted: one (designated, used) pair per
  /// object, encoded as (designated << 32) | min(used, t) and sorted
  /// ascending.  With DYNAMIC designation (Options::designated empty) the
  /// slots are anonymous — which concrete objects ended up designated is
  /// an artifact of arrival order — so two budget states that differ only
  /// by a permutation of slots yield EQUAL profiles.  This is the
  /// object-space analogue of the explorers' process-symmetry invariant
  /// (DESIGN.md §3d) and what reduction tests compare across permuted
  /// runs.  With static designation the profile is still well-defined but
  /// slots are no longer interchangeable.
  [[nodiscard]] std::vector<std::uint64_t> usage_profile() const {
    std::vector<std::uint64_t> profile;
    profile.reserve(options_.objects);
    for (std::uint32_t i = 0; i < options_.objects; ++i) {
      std::uint64_t designated = 0;
      std::uint64_t used = 0;
      if (budget_) {
        designated = budget_->is_designated(i) ? 1 : 0;
        used = budget_->faults_used(i);
        if (options_.t != model::kUnbounded && used > options_.t) {
          used = options_.t;
        }
      }
      profile.push_back((designated << 32) | used);
    }
    std::sort(profile.begin(), profile.end());
    return profile;
  }

 private:
  Options options_;
  std::unique_ptr<FaultBudget> budget_;
  std::vector<std::unique_ptr<FaultyCas>> objects_;
  std::vector<objects::CasObject*> raw_;
};

}  // namespace ff::faults
