// Fault policies: WHEN does a faulty object attempt to misbehave?
//
// The paper places no restriction on fault timing ("there are no
// restrictions on the frequency of the faults or the identity of the
// executing processes that cause them", §3.2), so the experiments sweep a
// spectrum of adversaries: never, always, probabilistic, periodic, and
// fully scripted.  A policy only expresses *intent*; the FaultBudget has
// final say on whether the fault may fire.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <set>
#include <utility>
#include <vector>

#include "objects/shared_object.hpp"
#include "util/rng.hpp"

namespace ff::faults {

class FaultPolicy {
 public:
  virtual ~FaultPolicy() = default;

  /// Whether the object should attempt a fault on this invocation.
  /// `op_index` is the per-object invocation sequence number.
  /// Implementations must be thread-safe and, for reproducibility,
  /// deterministic in (obj, caller, op_index).
  virtual bool should_fault(objects::ObjectId obj, objects::ProcessId caller,
                            std::uint64_t op_index) = 0;

  /// Resets internal state between trials (default: nothing to reset).
  virtual void reset() {}
};

/// Never attempts a fault — the correct-object baseline.
class NeverFault final : public FaultPolicy {
 public:
  bool should_fault(objects::ObjectId, objects::ProcessId,
                    std::uint64_t) override {
    return false;
  }
};

/// Attempts a fault on every invocation (the budget throttles it).  This
/// is the worst structured adversary for unbounded-fault experiments.
class AlwaysFault final : public FaultPolicy {
 public:
  bool should_fault(objects::ObjectId, objects::ProcessId,
                    std::uint64_t) override {
    return true;
  }
};

/// Attempts a fault with probability p per invocation.  Stateless and
/// thread-safe: the decision is a hash of (seed, object, op_index), so a
/// given trial is reproducible regardless of thread interleaving.
class ProbabilisticFault final : public FaultPolicy {
 public:
  ProbabilisticFault(double p, std::uint64_t seed) noexcept
      : p_(p), seed_(seed) {}

  bool should_fault(objects::ObjectId obj, objects::ProcessId,
                    std::uint64_t op_index) override {
    if (p_ <= 0.0) return false;
    if (p_ >= 1.0) return true;
    const std::uint64_t h = util::mix64(
        seed_ ^ util::mix64((static_cast<std::uint64_t>(obj) << 32) ^
                            op_index));
    return (static_cast<double>(h >> 11) * 0x1.0p-53) < p_;
  }

  [[nodiscard]] double probability() const noexcept { return p_; }

 private:
  const double p_;
  const std::uint64_t seed_;
};

/// Attempts a fault on every k-th invocation of each object (op_index
/// multiples of k, starting at `offset`).
class PeriodicFault final : public FaultPolicy {
 public:
  explicit PeriodicFault(std::uint64_t k, std::uint64_t offset = 0) noexcept
      : k_(k), offset_(offset) {}

  bool should_fault(objects::ObjectId, objects::ProcessId,
                    std::uint64_t op_index) override {
    return k_ != 0 && op_index % k_ == offset_ % k_;
  }

 private:
  const std::uint64_t k_;
  const std::uint64_t offset_;
};

/// Attempts a fault on the first k invocations of each object.
class FirstKFault final : public FaultPolicy {
 public:
  explicit FirstKFault(std::uint64_t k) noexcept : k_(k) {}

  bool should_fault(objects::ObjectId, objects::ProcessId,
                    std::uint64_t op_index) override {
    return op_index < k_;
  }

 private:
  const std::uint64_t k_;
};

/// Attempts a fault only for invocations by the listed processes — used by
/// the Theorem 18 reduced model, where all faults are caused by p1's
/// operations.
class ProcessScopedFault final : public FaultPolicy {
 public:
  explicit ProcessScopedFault(std::set<objects::ProcessId> processes)
      : processes_(std::move(processes)) {}

  bool should_fault(objects::ObjectId, objects::ProcessId caller,
                    std::uint64_t) override {
    return processes_.contains(caller);
  }

 private:
  const std::set<objects::ProcessId> processes_;
};

/// Fully scripted: faults exactly at the listed (object, op_index) pairs.
/// The deterministic adversaries of the impossibility demonstrations use
/// this to reproduce the executions the proofs construct.
class ScriptedFault final : public FaultPolicy {
 public:
  explicit ScriptedFault(
      std::vector<std::pair<objects::ObjectId, std::uint64_t>> script) {
    for (const auto& [obj, idx] : script) script_.insert({obj, idx});
  }

  bool should_fault(objects::ObjectId obj, objects::ProcessId,
                    std::uint64_t op_index) override {
    return script_.contains({obj, op_index});
  }

 private:
  std::set<std::pair<objects::ObjectId, std::uint64_t>> script_;
};

/// Combines two policies with OR — e.g. "scripted burst plus background
/// probabilistic noise".
class EitherFault final : public FaultPolicy {
 public:
  EitherFault(FaultPolicy& a, FaultPolicy& b) noexcept : a_(a), b_(b) {}

  bool should_fault(objects::ObjectId obj, objects::ProcessId caller,
                    std::uint64_t op_index) override {
    // No short-circuit: both policies observe every invocation so that
    // stateful policies keep consistent views.
    const bool fa = a_.should_fault(obj, caller, op_index);
    const bool fb = b_.should_fault(obj, caller, op_index);
    return fa || fb;
  }

  void reset() override {
    a_.reset();
    b_.reset();
  }

 private:
  FaultPolicy& a_;
  FaultPolicy& b_;
};

}  // namespace ff::faults
