// Fault budgets: at most f faulty objects in the execution, at most t
// manifested faults per faulty object (Definition 3 parameters).
//
// Two designation modes are supported:
//   * static  — the experiment fixes which objects are the faulty ones;
//   * dynamic — objects become "faulty" the first time a fault fires on
//     them, first-come first-served until f objects are designated.  This
//     lets a randomized adversary pick the worst placement on the fly.
//
// All operations are lock-free; budgets sit on the CAS hot path.
//
// CONTRACT: a budget governs one bank of objects whose ids are dense and
// bank-local, 0 .. num_objects-1.  Passing a foreign (e.g. globally
// unique) id is a programming error, caught by assert in debug builds.
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <vector>

#include "model/tolerance.hpp"
#include "objects/shared_object.hpp"
#include "util/cacheline.hpp"

namespace ff::faults {

class FaultBudget {
 public:
  /// Dynamic designation: the first `f` distinct objects on which a fault
  /// fires become the faulty set.
  FaultBudget(std::uint32_t num_objects, std::uint32_t f, std::uint32_t t)
      : f_(f), t_(t), slots_(num_objects) {}

  /// Static designation: exactly the listed objects may fault.
  FaultBudget(std::uint32_t num_objects,
              const std::vector<objects::ObjectId>& faulty_objects,
              std::uint32_t t)
      : f_(static_cast<std::uint32_t>(faulty_objects.size())),
        t_(t),
        static_designation_(true),
        slots_(num_objects) {
    for (const auto id : faulty_objects) {
      assert(id < num_objects);
      slots_[id]->designated.store(true, std::memory_order_relaxed);
    }
    designated_.store(f_, std::memory_order_relaxed);
  }

  FaultBudget(const FaultBudget&) = delete;
  FaultBudget& operator=(const FaultBudget&) = delete;

  /// Attempts to account one fault on `obj`.  Returns true iff the fault
  /// is within budget (object designated — or designatable — and fewer
  /// than t faults consumed on it).  On success the fault is charged; use
  /// refund() if it then fails to manifest.
  bool try_consume(objects::ObjectId obj) {
    assert(obj < slots_.size());
    Slot& slot = *slots_[obj];
    if (!slot.designated.load(std::memory_order_acquire) &&
        !try_designate(slot)) {
      return false;
    }
    if (t_ == model::kUnbounded) {
      slot.used.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
    // Bounded: CAS-increment only while below t.
    std::uint64_t used = slot.used.load(std::memory_order_relaxed);
    while (used < t_) {
      if (slot.used.compare_exchange_weak(used, used + 1,
                                          std::memory_order_acq_rel,
                                          std::memory_order_relaxed)) {
        return true;
      }
    }
    return false;
  }

  /// Returns one previously consumed fault on `obj` (the fault fired but
  /// did not manifest a Φ-violation, so per Definition 1 it never
  /// happened).  Keeping the budget exact makes "exactly t faults"
  /// adversaries expressible.
  void refund(objects::ObjectId obj) {
    assert(obj < slots_.size());
    slots_[obj]->used.fetch_sub(1, std::memory_order_relaxed);
  }

  [[nodiscard]] bool is_designated(objects::ObjectId obj) const {
    assert(obj < slots_.size());
    return slots_[obj]->designated.load(std::memory_order_acquire);
  }

  [[nodiscard]] std::uint64_t faults_used(objects::ObjectId obj) const {
    assert(obj < slots_.size());
    return slots_[obj]->used.load(std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint32_t designated_count() const noexcept {
    return designated_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t total_faults_used() const {
    std::uint64_t total = 0;
    for (const auto& slot : slots_) {
      total += slot->used.load(std::memory_order_relaxed);
    }
    return total;
  }

  [[nodiscard]] std::uint32_t f() const noexcept { return f_; }
  [[nodiscard]] std::uint32_t t() const noexcept { return t_; }
  [[nodiscard]] std::uint32_t num_objects() const noexcept {
    return static_cast<std::uint32_t>(slots_.size());
  }

  /// Clears consumption counters (and, in dynamic mode, designations) for
  /// the next trial.
  void reset() {
    for (auto& slot : slots_) {
      slot->used.store(0, std::memory_order_relaxed);
      if (!static_designation_) {
        slot->designated.store(false, std::memory_order_relaxed);
      }
    }
    if (!static_designation_) {
      designated_.store(0, std::memory_order_relaxed);
    }
  }

 private:
  struct Slot {
    std::atomic<bool> designated{false};
    std::atomic<std::uint64_t> used{0};
  };

  bool try_designate(Slot& slot) {
    if (static_designation_) return false;
    std::uint32_t count = designated_.load(std::memory_order_relaxed);
    while (count < f_) {
      if (designated_.compare_exchange_weak(count, count + 1,
                                            std::memory_order_acq_rel,
                                            std::memory_order_relaxed)) {
        // We hold a designation token.  If another thread designated this
        // same slot concurrently, return the token.
        bool expected = false;
        if (slot.designated.compare_exchange_strong(
                expected, true, std::memory_order_acq_rel)) {
          return true;
        }
        designated_.fetch_sub(1, std::memory_order_relaxed);
        return true;  // someone else designated it; the slot is faulty
      }
    }
    return slot.designated.load(std::memory_order_acquire);
  }

  const std::uint32_t f_;
  const std::uint32_t t_;
  const bool static_designation_ = false;
  std::atomic<std::uint32_t> designated_{0};
  std::vector<util::Padded<Slot>> slots_;
};

}  // namespace ff::faults
