// FaultyFetchAdd — a fetch-and-add object with injectable functional
// faults (see model/faa_semantics.hpp for the Φ′ of each kind).
//
// Mirrors FaultyCas: one atomic instruction per invocation, fault
// decided first, budget charged only when the outcome violates Φ.
// The off-by-one fault alternates drift direction deterministically from
// the object's seed unless a custom direction source is installed.
#pragma once

#include <atomic>
#include <functional>
#include <mutex>
#include <vector>

#include "faults/budget.hpp"
#include "faults/policy.hpp"
#include "model/faa_semantics.hpp"
#include "objects/fetch_add.hpp"
#include "util/cacheline.hpp"
#include "util/rng.hpp"

namespace ff::faults {

/// One completed F&A invocation at its linearization point.
struct FaaEvent {
  objects::ObjectId object = 0;
  objects::ProcessId caller = 0;
  std::uint64_t op_index = 0;
  model::FaaCall call;
  model::FaaObservation obs;
  model::FaultKind fired = model::FaultKind::kNone;
  bool manifested = false;
};

/// Thread-safe collector of F&A events.
class FaaTraceSink {
 public:
  void on_faa(const FaaEvent& event) {
    const std::lock_guard<std::mutex> lock(mu_);
    events_.push_back(event);
  }
  [[nodiscard]] std::vector<FaaEvent> snapshot() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return events_;
  }
  void clear() {
    const std::lock_guard<std::mutex> lock(mu_);
    events_.clear();
  }

 private:
  mutable std::mutex mu_;
  std::vector<FaaEvent> events_;
};

class FaultyFetchAdd final : public objects::FetchAddObject {
 public:
  /// Produces the off-by-one direction (+1 / -1) per invocation.
  using DriftSource = std::function<model::CounterValue(std::uint64_t op)>;

  FaultyFetchAdd(objects::ObjectId id, model::FaultKind kind,
                 FaultPolicy* policy, FaultBudget* budget,
                 FaaTraceSink* sink = nullptr, std::uint64_t seed = 0xFAA)
      : FetchAddObject(id, std::string(model::to_string(kind)) + "-faa"),
        kind_(kind),
        policy_(policy),
        budget_(budget),
        sink_(sink),
        word_(0) {
    drift_ = [seed](std::uint64_t op) {
      return (util::mix64(seed ^ op) & 1) ? model::CounterValue{1}
                                          : model::CounterValue{-1};
    };
  }

  void set_drift_source(DriftSource source) { drift_ = std::move(source); }

  [[nodiscard]] model::FaultKind kind() const noexcept { return kind_; }

  model::CounterValue fetch_add(model::CounterValue delta,
                                objects::ProcessId caller) override {
    // As in FaultyCas: a traced invocation's linearization point and its
    // sink seq assignment must act as one atomic unit, or the recorded
    // order is not a valid linearization.  Untraced objects keep the bare
    // atomic fast path.
    if (sink_ != nullptr) {
      const std::lock_guard<std::mutex> lock(trace_mu_);
      return fetch_add_impl(delta, caller);
    }
    return fetch_add_impl(delta, caller);
  }

 private:
  model::CounterValue fetch_add_impl(model::CounterValue delta,
                                     objects::ProcessId caller) {
    const std::uint64_t op =
        op_counter_->fetch_add(1, std::memory_order_relaxed);
    const bool want = kind_ != model::FaultKind::kNone &&
                      policy_ != nullptr &&
                      policy_->should_fault(id(), caller, op);

    FaaEvent ev;
    ev.object = id();
    ev.caller = caller;
    ev.op_index = op;
    ev.call = {delta};

    if (!want) {
      exec_correct(delta, ev);
    } else {
      switch (kind_) {
        case model::FaultKind::kOverriding: {  // off-by-one carry fault
          if (!consume()) {
            exec_correct(delta, ev);
            break;
          }
          const model::CounterValue err = drift_(op);
          const auto old = static_cast<model::CounterValue>(word_.fetch_add(
              static_cast<std::uint64_t>(delta + err),
              std::memory_order_acq_rel));
          ev.obs = {old, old + delta + err, old};
          ev.fired = model::FaultKind::kOverriding;
          ev.manifested = err != 0;
          if (!ev.manifested) refund();
          break;
        }
        case model::FaultKind::kSilent: {
          if (!consume()) {
            exec_correct(delta, ev);
            break;
          }
          const auto old = static_cast<model::CounterValue>(
              word_.load(std::memory_order_acquire));
          ev.obs = {old, old, old};
          ev.fired = model::FaultKind::kSilent;
          // A dropped add of 0 satisfies Φ — not a fault.
          ev.manifested = delta != 0;
          if (!ev.manifested) refund();
          break;
        }
        case model::FaultKind::kInvisible: {
          if (!consume()) {
            exec_correct(delta, ev);
            break;
          }
          exec_correct(delta, ev);
          ev.obs.returned = ev.obs.before + 1;  // corrupted output
          ev.fired = model::FaultKind::kInvisible;
          ev.manifested = true;
          break;
        }
        default:
          exec_correct(delta, ev);
          break;
      }
    }

    if (sink_ != nullptr) sink_->on_faa(ev);
    return ev.obs.returned;
  }

 public:
  [[nodiscard]] model::CounterValue debug_read() const override {
    return static_cast<model::CounterValue>(
        word_.load(std::memory_order_acquire));
  }

  void reset(model::CounterValue initial = 0) override {
    word_.store(static_cast<std::uint64_t>(initial),
                std::memory_order_release);
    op_counter_->store(0, std::memory_order_relaxed);
  }

 private:
  bool consume() {
    return budget_ == nullptr || budget_->try_consume(id());
  }
  void refund() {
    if (budget_ != nullptr) budget_->refund(id());
  }

  void exec_correct(model::CounterValue delta, FaaEvent& ev) {
    const auto old = static_cast<model::CounterValue>(word_.fetch_add(
        static_cast<std::uint64_t>(delta), std::memory_order_acq_rel));
    ev.obs = {old, old + delta, old};
  }

  const model::FaultKind kind_;
  FaultPolicy* const policy_;
  FaultBudget* const budget_;
  FaaTraceSink* const sink_;
  DriftSource drift_;

  alignas(util::kCacheLineSize) std::atomic<std::uint64_t> word_;
  util::Padded<std::atomic<std::uint64_t>> op_counter_{};
  /// Serializes traced invocations so the sink's seq order is a valid
  /// linearization order (held only when `sink_` is attached).
  std::mutex trace_mu_;
};

}  // namespace ff::faults
