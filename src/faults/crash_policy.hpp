// Crash policies: WHEN does a process (virtually) lose power?
//
// The simulator branches on every legal crash point exhaustively; the
// real-thread stress campaigns instead *sample* crash points through a
// policy, mirroring the pull-the-plug instrumentation of crash-test
// harnesses (a fault point is consulted immediately before each shared
// operation and may decide to kill the calling process there).  The
// three non-trivial shapes follow the classic instrumented-fault modes:
//
//   * Independent    — each crash point fires with a fixed probability;
//   * RunLength      — crash exactly on the k-th shared op of each
//                      incarnation (op indices start at 1);
//   * UniformOverRun — per (process, incarnation), pick a run length
//                      uniformly from 1..run_length-1 (exclusive upper
//                      bound) and crash there.
//
// A policy only expresses *intent*: the protocol's crash budget has
// final say, exactly as FaultBudget throttles FaultPolicy.  All
// decisions are deterministic in (pid, incarnation, op_index) so a
// seeded trial replays identically regardless of thread interleaving.
#pragma once

#include <cstdint>
#include <stdexcept>

#include "objects/shared_object.hpp"
#include "util/rng.hpp"

namespace ff::faults {

/// Thrown out of an instrumented protocol step to "pull the plug" on the
/// calling process: the worker thread unwinds and dies, and the runtime
/// may start a REPLACEMENT thread that re-enters at the protocol's
/// recovery label (volatile locals lost, persistent locals preserved).
class CrashError : public std::runtime_error {
 public:
  CrashError() : std::runtime_error("process crash (instrumented)") {}
};

class CrashPolicy {
 public:
  virtual ~CrashPolicy() = default;

  /// Whether the process should crash at this crash point.  `incarnation`
  /// counts prior crashes of `pid` in this trial (0 = first life) and
  /// `op_index` is the 1-based shared-op index within the current
  /// incarnation.  Implementations must be thread-safe and deterministic
  /// in their arguments.
  virtual bool should_crash(objects::ProcessId pid, std::uint32_t incarnation,
                            std::uint64_t op_index) = 0;

  /// Resets internal state between trials (default: nothing to reset).
  virtual void reset() {}
};

/// Never crashes — the baseline that must reproduce crash-free runs.
class NeverCrash final : public CrashPolicy {
 public:
  bool should_crash(objects::ProcessId, std::uint32_t,
                    std::uint64_t) override {
    return false;
  }
};

/// Each crash point fires independently with probability p.  Stateless
/// and thread-safe: the decision is a hash of (seed, pid, incarnation,
/// op_index), so a seeded trial is reproducible under any interleaving.
class IndependentCrash final : public CrashPolicy {
 public:
  IndependentCrash(double p, std::uint64_t seed) noexcept
      : p_(p), seed_(seed) {}

  bool should_crash(objects::ProcessId pid, std::uint32_t incarnation,
                    std::uint64_t op_index) override {
    if (p_ <= 0.0) return false;
    if (p_ >= 1.0) return true;
    const std::uint64_t h = util::mix64(
        seed_ ^ util::mix64((static_cast<std::uint64_t>(pid) << 32) ^
                            (static_cast<std::uint64_t>(incarnation) << 52) ^
                            op_index));
    return (static_cast<double>(h >> 11) * 0x1.0p-53) < p_;
  }

  [[nodiscard]] double probability() const noexcept { return p_; }

 private:
  const double p_;
  const std::uint64_t seed_;
};

/// Crashes exactly on the run_length-th shared op of every incarnation
/// (1-based).  run_length 0 never crashes.
class RunLengthCrash final : public CrashPolicy {
 public:
  explicit RunLengthCrash(std::uint64_t run_length) noexcept
      : run_length_(run_length) {}

  bool should_crash(objects::ProcessId, std::uint32_t,
                    std::uint64_t op_index) override {
    return run_length_ != 0 && op_index == run_length_;
  }

 private:
  const std::uint64_t run_length_;
};

/// Per (process, incarnation), draws a run length uniformly from
/// 1..run_length-1 (exclusive upper bound) and crashes on that shared
/// op.  run_length < 2 never crashes.
class UniformOverRunCrash final : public CrashPolicy {
 public:
  UniformOverRunCrash(std::uint64_t run_length, std::uint64_t seed) noexcept
      : run_length_(run_length), seed_(seed) {}

  bool should_crash(objects::ProcessId pid, std::uint32_t incarnation,
                    std::uint64_t op_index) override {
    if (run_length_ < 2) return false;
    const std::uint64_t h = util::mix64(
        seed_ ^ util::mix64((static_cast<std::uint64_t>(pid) << 32) ^
                            incarnation));
    return op_index == 1 + h % (run_length_ - 1);
  }

 private:
  const std::uint64_t run_length_;
  const std::uint64_t seed_;
};

}  // namespace ff::faults
