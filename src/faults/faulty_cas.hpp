// FaultyCas — a CAS object that may manifest one of the paper's functional
// faults (Sections 3.3-3.4) or Afek-style data corruption (Section 3.1).
//
// Fault machinery runs AT the linearization point: the object consults its
// FaultPolicy/FaultBudget and then executes exactly one atomic instruction
// whose semantics are either the correct CAS (compare_exchange) or the
// fault's deviating postcondition Φ′ (e.g. unconditional exchange for the
// overriding fault).  Faulty histories are therefore linearizable with
// respect to the *faulty* sequential specification, matching Definition 1.
//
// Budget accounting is manifestation-exact: a fault that fires but whose
// outcome happens to satisfy the standard postcondition Φ (e.g. an
// overriding fault on a CAS whose comparison would have succeeded anyway)
// is refunded, because by Definition 1 no functional fault occurred.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <stdexcept>

#include "faults/budget.hpp"
#include "faults/policy.hpp"
#include "faults/trace.hpp"
#include "model/cas_semantics.hpp"
#include "model/fault_kind.hpp"
#include "model/value.hpp"
#include "objects/cas_object.hpp"
#include "util/cacheline.hpp"
#include "util/rng.hpp"

namespace ff::faults {

/// Thrown by the real-thread path when a nonresponsive fault fires: the
/// operation "never returns", which a thread harness models by unwinding
/// the protocol invocation.  The deterministic simulator instead simply
/// stops scheduling the process.
class NonresponsiveError : public std::runtime_error {
 public:
  NonresponsiveError(objects::ObjectId obj, objects::ProcessId caller)
      : std::runtime_error("nonresponsive CAS fault"),
        object(obj),
        process(caller) {}

  objects::ObjectId object;
  objects::ProcessId process;
};

class FaultyCas final : public objects::CasObject {
 public:
  /// Produces the value an arbitrary fault / data corruption writes,
  /// given the per-object invocation index.
  using ArbitrarySource = std::function<model::Word(std::uint64_t op_index)>;

  /// Produces the corrupted output of an invisible fault; must return a
  /// value different from its argument.
  using InvisibleCorruptor = std::function<model::Value(model::Value before)>;

  /// `policy` and `budget` are borrowed (shared across the object set of
  /// one experiment) and may be null: a null policy never faults; a null
  /// budget places no (f, t) accounting on this object.
  FaultyCas(objects::ObjectId id, model::FaultKind kind,
            FaultPolicy* policy, FaultBudget* budget,
            TraceSink* sink = nullptr, std::uint64_t seed = 0x5eed)
      : CasObject(id, std::string(model::to_string(kind)) + "-cas"),
        kind_(kind),
        policy_(policy),
        budget_(budget),
        sink_(sink),
        seed_(seed),
        word_(model::Value::bottom().raw()) {
    arbitrary_ = [s = seed_](std::uint64_t op) {
      return util::mix64(s ^ util::mix64(op + 1));
    };
    invisible_ = [](model::Value before) {
      return model::Value::of(before.raw() + 1);
    };
  }

  void set_arbitrary_source(ArbitrarySource src) {
    arbitrary_ = std::move(src);
  }
  void set_invisible_corruptor(InvisibleCorruptor c) {
    invisible_ = std::move(c);
  }

  [[nodiscard]] model::FaultKind kind() const noexcept { return kind_; }

  model::Value cas(model::Value expected, model::Value desired,
                   objects::ProcessId caller) override {
    // With a sink attached, the linearization point and the sink's seq
    // assignment must act as one atomic unit: otherwise two concurrent
    // invocations can linearize in one order but reach the sink in the
    // other, and the recorded seq order is not a valid linearization.
    // The per-object lock closes that window; untraced objects keep the
    // bare atomic fast path.
    if (sink_ != nullptr) {
      const std::lock_guard<std::mutex> lock(trace_mu_);
      return cas_impl(expected, desired, caller);
    }
    return cas_impl(expected, desired, caller);
  }

 private:
  model::Value cas_impl(model::Value expected, model::Value desired,
                        objects::ProcessId caller) {
    const std::uint64_t op =
        op_counter_->fetch_add(1, std::memory_order_relaxed);
    const bool want = kind_ != model::FaultKind::kNone && policy_ != nullptr &&
                      policy_->should_fault(id(), caller, op);

    CasEvent ev;
    ev.object = id();
    ev.caller = caller;
    ev.op_index = op;
    ev.call = {expected, desired};

    if (!want) {
      exec_correct(expected, desired, ev);
    } else {
      switch (kind_) {
        case model::FaultKind::kOverriding:
          exec_overriding(expected, desired, ev);
          break;
        case model::FaultKind::kSilent:
          exec_silent(expected, desired, ev);
          break;
        case model::FaultKind::kInvisible:
          exec_invisible(expected, desired, ev);
          break;
        case model::FaultKind::kArbitrary:
          exec_arbitrary(expected, desired, op, ev);
          break;
        case model::FaultKind::kNonresponsive:
          if (consume()) {
            ev.fired = model::FaultKind::kNonresponsive;
            ev.manifested = true;
            const model::Value now = debug_read();
            ev.obs = {now, now, model::Value::bottom()};
            emit(ev);
            throw NonresponsiveError(id(), caller);
          }
          exec_correct(expected, desired, ev);
          break;
        case model::FaultKind::kDataCorruption:
          exec_data_corruption(expected, desired, op, ev);
          break;
        case model::FaultKind::kNone:
          exec_correct(expected, desired, ev);
          break;
      }
    }

    emit(ev);
    return ev.obs.returned;
  }

 public:
  [[nodiscard]] model::Value debug_read() const override {
    return model::Value::of(word_.load(std::memory_order_acquire));
  }

  void reset(model::Value initial = model::Value::bottom()) override {
    word_.store(initial.raw(), std::memory_order_release);
    op_counter_->store(0, std::memory_order_relaxed);
  }

  /// Adversary/test API: corrupts the register content right now,
  /// independent of any operation — a raw Afek-model data fault.  Returns
  /// the displaced value.  Not accounted against the (f,t) budget; callers
  /// modelling budgeted data faults must account explicitly.
  model::Value corrupt_now(model::Value garbage) {
    const model::Word old =
        word_.exchange(garbage.raw(), std::memory_order_acq_rel);
    return model::Value::of(old);
  }

 private:
  bool consume() {
    return budget_ == nullptr || budget_->try_consume(id());
  }
  void refund() {
    if (budget_ != nullptr) budget_->refund(id());
  }
  void emit(const CasEvent& ev) {
    if (sink_ != nullptr) sink_->on_cas(ev);
  }

  void exec_correct(model::Value expected, model::Value desired,
                    CasEvent& ev) {
    model::Word observed = expected.raw();
    const bool ok = word_.compare_exchange_strong(observed, desired.raw(),
                                                  std::memory_order_acq_rel,
                                                  std::memory_order_acquire);
    const auto before = model::Value::of(observed);
    ev.obs = {before, ok ? desired : before, before};
  }

  void exec_overriding(model::Value expected, model::Value desired,
                       CasEvent& ev) {
    // Try the correct CAS first: an overriding fault on a successful
    // comparison is indistinguishable from correct execution, so it must
    // not consume budget (Definition 1: Φ still holds).
    model::Word observed = expected.raw();
    if (word_.compare_exchange_strong(observed, desired.raw(),
                                      std::memory_order_acq_rel,
                                      std::memory_order_acquire)) {
      const auto before = model::Value::of(observed);
      ev.obs = {before, desired, before};
      return;
    }
    if (!consume()) {
      // Budget exhausted: the failed compare_exchange above IS the
      // correct execution of this invocation.
      const auto before = model::Value::of(observed);
      ev.obs = {before, before, before};
      return;
    }
    // Φ′: R = val ∧ old = R′ — write unconditionally.
    const auto before = model::Value::of(
        word_.exchange(desired.raw(), std::memory_order_acq_rel));
    ev.obs = {before, desired, before};
    ev.fired = model::FaultKind::kOverriding;
    // Not manifested when Φ held after all: the content raced back to
    // `expected`, or it already equalled `desired` (overwriting a value
    // with itself is indistinguishable from a correct failed CAS).
    ev.manifested = !model::satisfies_phi(ev.obs, ev.call);
    if (!ev.manifested) refund();
  }

  void exec_silent(model::Value expected, model::Value desired,
                   CasEvent& ev) {
    if (!consume()) {
      exec_correct(expected, desired, ev);
      return;
    }
    // Linearize at a plain load.  If the content equals `expected`, a
    // correct CAS would have written — refusing to is the silent fault.
    // Otherwise the observation coincides with a correct failed CAS.
    const auto before =
        model::Value::of(word_.load(std::memory_order_acquire));
    ev.obs = {before, before, before};
    ev.fired = model::FaultKind::kSilent;
    // Manifests only when a correct CAS would have changed the content:
    // the comparison matched AND the desired value differs.
    ev.manifested = !model::satisfies_phi(ev.obs, ev.call);
    if (!ev.manifested) refund();
  }

  void exec_invisible(model::Value expected, model::Value desired,
                      CasEvent& ev) {
    if (!consume()) {
      exec_correct(expected, desired, ev);
      return;
    }
    exec_correct(expected, desired, ev);
    const model::Value corrupted = invisible_(ev.obs.before);
    ev.obs.returned = corrupted;
    ev.fired = model::FaultKind::kInvisible;
    ev.manifested = corrupted != ev.obs.before;
    if (!ev.manifested) refund();
  }

  void exec_arbitrary(model::Value expected, model::Value desired,
                      std::uint64_t op, CasEvent& ev) {
    if (!consume()) {
      exec_correct(expected, desired, ev);
      return;
    }
    const auto garbage = model::Value::of(arbitrary_(op));
    const auto before = model::Value::of(
        word_.exchange(garbage.raw(), std::memory_order_acq_rel));
    ev.obs = {before, garbage, before};
    ev.fired = model::FaultKind::kArbitrary;
    ev.manifested = !model::satisfies_phi(ev.obs, ev.call);
    if (!ev.manifested) refund();
  }

  void exec_data_corruption(model::Value expected, model::Value desired,
                            std::uint64_t op, CasEvent& ev) {
    if (!consume()) {
      exec_correct(expected, desired, ev);
      return;
    }
    // Afek model: the register content is replaced at an arbitrary moment
    // independent of operations.  Piggybacking on this invocation's timing
    // is one legal placement; corrupt, then run the CAS correctly.
    corrupt_now(model::Value::of(arbitrary_(op)));
    exec_correct(expected, desired, ev);
    ev.fired = model::FaultKind::kDataCorruption;
    ev.manifested = true;
  }

  const model::FaultKind kind_;
  FaultPolicy* const policy_;
  FaultBudget* const budget_;
  TraceSink* const sink_;
  const std::uint64_t seed_;
  ArbitrarySource arbitrary_;
  InvisibleCorruptor invisible_;

  alignas(util::kCacheLineSize) std::atomic<model::Word> word_;
  util::Padded<std::atomic<std::uint64_t>> op_counter_{};
  /// Serializes traced invocations so the sink's seq order is a valid
  /// linearization order (held only when `sink_` is attached).
  std::mutex trace_mu_;
};

}  // namespace ff::faults
