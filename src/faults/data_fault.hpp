// Asynchronous data-fault injector ("gremlin") for the Afek et al. model
// (Section 3.1): memory corruption that happens at arbitrary execution
// points, independent of the processes' operations.
//
// The gremlin runs on its own thread and replaces the content of randomly
// chosen designated objects with arbitrary values, up to a per-object
// corruption budget.  Experiment E7 uses it to show that the staged
// protocol, which tolerates bounded OVERRIDING faults on all objects,
// is defeated by the analogous number of data faults — the separation the
// paper's introduction highlights.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "faults/faulty_cas.hpp"
#include "model/value.hpp"
#include "util/rng.hpp"

namespace ff::faults {

class CorruptionGremlin {
 public:
  struct Options {
    /// Corruptions to inject per object before the gremlin rests.
    std::uint64_t corruptions_per_object = 1;
    /// Nanoseconds to sleep between injection attempts (0 = busy loop
    /// with yields, maximum pressure).
    std::uint64_t pause_ns = 0;
    std::uint64_t seed = 0x6e61747572616c5fULL;
  };

  CorruptionGremlin(std::vector<FaultyCas*> targets, Options options)
      : targets_(std::move(targets)), options_(options) {}

  ~CorruptionGremlin() { stop(); }

  CorruptionGremlin(const CorruptionGremlin&) = delete;
  CorruptionGremlin& operator=(const CorruptionGremlin&) = delete;

  void start() {
    if (running_.exchange(true)) return;
    thread_ = std::thread([this] { run(); });
  }

  void stop() {
    running_.store(false);
    if (thread_.joinable()) thread_.join();
  }

  [[nodiscard]] std::uint64_t corruptions() const noexcept {
    return injected_.load(std::memory_order_relaxed);
  }

 private:
  void run() {
    util::Xoshiro256 rng(options_.seed);
    std::vector<std::uint64_t> per_object(targets_.size(), 0);
    std::uint64_t remaining =
        options_.corruptions_per_object * targets_.size();
    while (running_.load(std::memory_order_relaxed) && remaining > 0) {
      const std::size_t pick = rng.below(targets_.size());
      if (per_object[pick] >= options_.corruptions_per_object) continue;
      targets_[pick]->corrupt_now(model::Value::of(rng()));
      ++per_object[pick];
      --remaining;
      injected_.fetch_add(1, std::memory_order_relaxed);
      if (options_.pause_ns > 0) {
        std::this_thread::sleep_for(
            std::chrono::nanoseconds(options_.pause_ns));
      } else {
        std::this_thread::yield();
      }
    }
  }

  std::vector<FaultyCas*> targets_;
  Options options_;
  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> injected_{0};
};

}  // namespace ff::faults
