// Execution trace recording for CAS operations and fault events.
//
// Traces serve two purposes: (1) the verification layer replays them
// against the Hoare-triple checkers to confirm that every injected fault
// manifested exactly its declared Φ′ and nothing else, and (2) the
// property tests check the paper's proof invariants (Claims 7-9, 13) on
// recorded histories.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

#include "model/cas_semantics.hpp"
#include "model/fault_kind.hpp"
#include "objects/shared_object.hpp"

namespace ff::faults {

/// One completed CAS invocation as observed at its linearization point.
struct CasEvent {
  objects::ObjectId object = 0;
  objects::ProcessId caller = 0;
  std::uint64_t op_index = 0;  ///< per-object invocation sequence number
  model::CasCall call;
  model::CasObservation obs;
  /// The fault the object *fired* for this invocation (kNone when the
  /// correct path executed).  Note a fired fault may fail to manifest —
  /// e.g. an overriding fault when the comparison would have succeeded
  /// anyway — in which case `manifested` is false and, per Definition 1,
  /// no functional fault occurred.
  model::FaultKind fired = model::FaultKind::kNone;
  bool manifested = false;

  /// Global sequence number assigned by the sink (defines the recorded
  /// linearization order).
  std::uint64_t seq = 0;
};

/// Receiver of trace events.  Implementations must be thread-safe.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void on_cas(const CasEvent& event) = 0;
};

/// Collects events into a vector under a mutex.  The mutex serializes
/// recording; the recorded seq order is a valid linearization order
/// because the traced objects (FaultyCas / FaultyFetchAdd) hold their
/// per-object trace lock across the linearization point AND the emit, so
/// an event reaches the sink while its operation is still the most
/// recent action on that object.
class VectorTraceSink final : public TraceSink {
 public:
  void on_cas(const CasEvent& event) override {
    const std::lock_guard<std::mutex> lock(mu_);
    CasEvent e = event;
    e.seq = next_seq_++;
    events_.push_back(e);
  }

  /// Snapshot of the events recorded so far.  Call after quiescence for a
  /// complete history.
  [[nodiscard]] std::vector<CasEvent> snapshot() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return events_;
  }

  [[nodiscard]] std::size_t size() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return events_.size();
  }

  void clear() {
    const std::lock_guard<std::mutex> lock(mu_);
    events_.clear();
    next_seq_ = 0;
  }

 private:
  mutable std::mutex mu_;
  std::vector<CasEvent> events_;
  std::uint64_t next_seq_ = 0;
};

/// Counts events without storing them (cheap enough for benchmarks).
class CountingTraceSink final : public TraceSink {
 public:
  void on_cas(const CasEvent& event) override {
    total_.fetch_add(1, std::memory_order_relaxed);
    if (event.manifested) {
      manifested_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  [[nodiscard]] std::uint64_t total() const noexcept {
    return total_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t manifested() const noexcept {
    return manifested_.load(std::memory_order_relaxed);
  }

  void clear() noexcept {
    total_.store(0, std::memory_order_relaxed);
    manifested_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> total_{0};
  std::atomic<std::uint64_t> manifested_{0};
};

}  // namespace ff::faults
