// RelaxedQueue — a shared FIFO queue whose dequeue may manifest the
// k-relaxation functional fault (model/queue_semantics.hpp): instead of
// the head, it returns an element up to k positions deep.
//
// The §6 bridge made executable: the SAME policy/budget machinery that
// drives CAS faults drives the relaxation here, and a trace of
// DequeueObservations feeds the same classification pipeline.  A
// mutex-protected deque keeps the object simple — this type exists to
// study the fault model, not queue scalability.
#pragma once

#include <cassert>
#include <deque>
#include <mutex>
#include <optional>
#include <vector>

#include "faults/budget.hpp"
#include "faults/policy.hpp"
#include "model/queue_semantics.hpp"
#include "objects/shared_object.hpp"
#include "util/rng.hpp"

namespace ff::faults {

/// One dequeue at its linearization point, for verification.
struct DequeueEvent {
  objects::ProcessId caller = 0;
  std::uint64_t op_index = 0;
  model::DequeueObservation obs;
  bool manifested = false;  ///< a relaxation ≥ 1 actually happened
};

class RelaxedQueue final : public objects::SharedObject {
 public:
  /// `k` is the maximum relaxation distance of a faulty dequeue.
  /// `policy`/`budget` are borrowed (budget keyed by this object's id).
  RelaxedQueue(objects::ObjectId id, std::uint32_t k, FaultPolicy* policy,
               FaultBudget* budget, std::uint64_t seed = 0x9e1a)
      : SharedObject(id, "relaxed-queue"),
        k_(k),
        policy_(policy),
        budget_(budget),
        rng_(seed) {}

  void enqueue(model::QueueElement element) {
    const std::lock_guard<std::mutex> lock(mu_);
    items_.push_back(element);
  }

  /// Dequeues; a fired relaxation fault returns an element up to k deep.
  std::optional<model::QueueElement> dequeue(objects::ProcessId caller) {
    const std::lock_guard<std::mutex> lock(mu_);
    const std::uint64_t op = op_index_++;

    DequeueEvent ev;
    ev.caller = caller;
    ev.op_index = op;
    const std::size_t window = std::min<std::size_t>(items_.size(), k_ + 1);
    ev.obs.prefix_before.assign(items_.begin(),
                                items_.begin() +
                                    static_cast<std::ptrdiff_t>(window));

    if (items_.empty()) {
      ev.obs.returned = std::nullopt;
      trace_.push_back(ev);
      return std::nullopt;
    }

    std::size_t pick = 0;
    const bool want = k_ > 0 && policy_ != nullptr &&
                      policy_->should_fault(id(), caller, op);
    if (want && window > 1 &&
        (budget_ == nullptr || budget_->try_consume(id()))) {
      // Relaxation distance uniform in [1, window-1]; distance 0 would
      // satisfy Φ and thus not be a fault (refund handled by choosing
      // ≥ 1 up front).
      pick = 1 + rng_.below(window - 1);
      ev.manifested = true;
    }

    const auto it = items_.begin() + static_cast<std::ptrdiff_t>(pick);
    ev.obs.returned = *it;
    items_.erase(it);
    trace_.push_back(ev);
    return ev.obs.returned;
  }

  [[nodiscard]] std::size_t size() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  [[nodiscard]] std::uint32_t relaxation() const noexcept { return k_; }

  /// Recorded dequeue observations (verification use).
  [[nodiscard]] std::vector<DequeueEvent> trace() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return trace_;
  }

  void reset() {
    const std::lock_guard<std::mutex> lock(mu_);
    items_.clear();
    trace_.clear();
    op_index_ = 0;
  }

 private:
  const std::uint32_t k_;
  FaultPolicy* const policy_;
  FaultBudget* const budget_;

  mutable std::mutex mu_;
  std::deque<model::QueueElement> items_;
  std::vector<DequeueEvent> trace_;
  std::uint64_t op_index_ = 0;
  util::Xoshiro256 rng_;
};

}  // namespace ff::faults
