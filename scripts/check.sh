#!/usr/bin/env bash
# Ten-stage verification gate:
#   1. default build (-DFF_WERROR=ON) → the fast `tier1` test label
#      (all unit suites) plus the `codegen` differential suite,
#      warnings promoted to errors;
#   2. ffgen drift gate: the committed src/proto/generated/ tree must be
#      byte-identical to what tools/ffgen emits from the current IR —
#      a changed Program with a stale generated tree fails here (the
#      fingerprint selection would silently fall back to the
#      interpreter, and hand edits to generated files would dodge
#      regeneration);
#   3. default build  → the `tier2-fuzz` label (wall-clock-bounded smoke
#      fuzz campaign per seed protocol);
#   4. FF_SANITIZE=thread build → the multi-threaded suites (label `tsan`,
#      i.e. the parallel-explorer differential harness and the real-thread
#      stress suites, the crashed-and-restarted worker threads of the
#      recoverable-consensus campaign included) under ThreadSanitizer;
#   5. FF_SANITIZE=address build → the memory-heavy fuzzer/explorer suites
#      (label `asan`) under AddressSanitizer + UndefinedBehaviorSanitizer;
#   6. ff-lint (label `lint`): the rule-engine test suite plus a tree
#      scan of the shipped sources, with the JSON report summarized;
#   7. ffcheck (label `analysis`): the IR-analyzer test suite (A1-A5
#      fixtures + the A2 pruning differential) plus a registry-wide
#      `ffcheck --json` run, with the obligation report summarized —
#      any violated obligation fails the stage;
#   8. clang-tidy (advisory) when clang-tidy is on PATH, against the
#      compile database stage 1 exported; skipped with a notice if not;
#   9. frontier differential (label `frontier`: the BFS engine's census
#      vs the sequential explorer across the registry grid, forced-spill
#      parity included), then bench smoke: bench_b3_explorer/
#      bench_b4_fuzzer/bench_b5_crash/bench_b6_frontier --json --smoke,
#      then scripts/bench_gate.py asserts the B3 state-space reduction
#      is >= 5x with a matching differential census, the
#      generated-machine overhead is <= 2% with every registry
#      protocol's generated census matching the interpreter, the A2
#      immunity pruning leaves the census bit-identical with a prune
#      factor >= 1, the pool batch sweep is >= 2x scalar delivery, the
#      B5 crash growth/latency bounds hold, and the B6 frontier engine
#      is >= 2x parallel_explore in states/sec with a bit-equal census
#      in memory and under forced spilling;
#  10. verify-cache (label `verify-cache`: the canonical job layer —
#      JobSpec round-trips, strict validation, and the persistent
#      census cache's hit/miss/soundness matrix), then
#      bench_b7_cache --json --smoke and scripts/bench_gate.py asserts
#      a warm cache hit is >= 100x faster than the cold search with a
#      bit-identical Report and zero fresh states expanded.
# Usage: scripts/check.sh   (from anywhere inside the repo)
set -euo pipefail
cd "$(dirname "$0")/.."
JOBS="${JOBS:-$(nproc)}"

echo "== [1/10] default build (FF_WERROR=ON) · ctest -L 'tier1|codegen' =="
cmake -B build -S . -DFF_WERROR=ON >/dev/null
cmake --build build -j "$JOBS"
ctest --test-dir build -L 'tier1|codegen' --output-on-failure -j "$JOBS"

echo "== [2/10] ffgen drift gate =="
./build/tools/ffgen/ffgen --check --out src/proto/generated

echo "== [3/10] default build · ctest -L tier2-fuzz =="
ctest --test-dir build -L tier2-fuzz --output-on-failure -j "$JOBS"

echo "== [4/10] FF_SANITIZE=thread build · ctest -L tsan =="
cmake -B build-tsan -S . -DFF_SANITIZE=thread >/dev/null
cmake --build build-tsan -j "$JOBS" \
  --target test_parallel_explorer test_determinism test_concurrency \
           test_recoverable_consensus
ctest --test-dir build-tsan -L tsan --output-on-failure -j "$JOBS"

echo "== [5/10] FF_SANITIZE=address build · ctest -L asan =="
cmake -B build-asan -S . -DFF_SANITIZE=address >/dev/null
cmake --build build-asan -j "$JOBS" \
  --target test_fuzzer test_shrink test_fuzz_smoke test_sim test_faults
ctest --test-dir build-asan -L asan --output-on-failure -j "$JOBS"

echo "== [6/10] ff-lint · ctest -L lint + tree scan =="
ctest --test-dir build -L lint --output-on-failure -j "$JOBS"
lint_status=0
./build/tools/fflint/fflint --root . --json --quiet \
  > build/fflint-report.json || lint_status=$?
if [ "$lint_status" -ge 2 ]; then
  echo "ff-lint failed to run (exit $lint_status)" >&2
  exit "$lint_status"
fi
python3 scripts/fflint_summary.py build/fflint-report.json
if [ "$lint_status" -ne 0 ]; then
  echo "ff-lint: unsuppressed findings — see build/fflint-report.json" >&2
  exit 1
fi

echo "== [7/10] ffcheck · ctest -L analysis + registry obligations =="
ctest --test-dir build -L analysis --output-on-failure -j "$JOBS"
ffcheck_status=0
./build/tools/ffcheck/ffcheck --json \
  > build/ffcheck-report.json || ffcheck_status=$?
if [ "$ffcheck_status" -ge 2 ]; then
  echo "ffcheck failed to run (exit $ffcheck_status)" >&2
  exit "$ffcheck_status"
fi
python3 scripts/ffcheck_summary.py build/ffcheck-report.json
if [ "$ffcheck_status" -ne 0 ]; then
  echo "ffcheck: violated obligations — see build/ffcheck-report.json" >&2
  exit 1
fi

echo "== [8/10] clang-tidy (advisory) =="
if command -v clang-tidy >/dev/null 2>&1; then
  # Tidy the first-party sources only; the compile database from stage 1
  # (CMAKE_EXPORT_COMPILE_COMMANDS) keeps flags identical to the build.
  git ls-files 'src/**/*.cpp' 'tools/**/*.cpp' \
    | xargs clang-tidy -p build --quiet
else
  echo "notice: clang-tidy not on PATH — stage skipped (advisory only)"
fi

echo "== [9/10] frontier differential + bench smoke · scripts/bench_gate.py =="
ctest --test-dir build -L frontier --output-on-failure -j "$JOBS"
./build/bench/bench_b3_explorer --json build/BENCH_B3.smoke.json --smoke
./build/bench/bench_b4_fuzzer --json build/BENCH_B4.smoke.json --smoke
./build/bench/bench_b5_crash --json build/BENCH_B5.smoke.json --smoke
./build/bench/bench_b6_frontier --json build/BENCH_B6.smoke.json --smoke
python3 scripts/bench_gate.py build/BENCH_B3.smoke.json \
                              build/BENCH_B5.smoke.json \
                              build/BENCH_B6.smoke.json

echo "== [10/10] verify-cache suite + B7 warm-hit gate =="
ctest --test-dir build -L verify-cache --output-on-failure -j "$JOBS"
./build/bench/bench_b7_cache --json build/BENCH_B7.smoke.json --smoke
python3 scripts/bench_gate.py build/BENCH_B7.smoke.json

echo "OK: all ten stages passed"
