#!/usr/bin/env bash
# Four-configuration verification gate:
#   1. default build  → the fast `tier1` test label (all unit suites);
#   2. default build  → the `tier2-fuzz` label (wall-clock-bounded smoke
#      fuzz campaign per seed protocol);
#   3. FF_SANITIZE=thread build → the multi-threaded suites (label `tsan`,
#      i.e. the parallel-explorer differential harness and the real-thread
#      stress suites) under ThreadSanitizer;
#   4. FF_SANITIZE=address build → the memory-heavy fuzzer/explorer suites
#      (label `asan`) under AddressSanitizer + UndefinedBehaviorSanitizer.
# Usage: scripts/check.sh   (from anywhere inside the repo)
set -euo pipefail
cd "$(dirname "$0")/.."
JOBS="${JOBS:-$(nproc)}"

echo "== [1/4] default build · ctest -L tier1 =="
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS"
ctest --test-dir build -L tier1 --output-on-failure -j "$JOBS"

echo "== [2/4] default build · ctest -L tier2-fuzz =="
ctest --test-dir build -L tier2-fuzz --output-on-failure -j "$JOBS"

echo "== [3/4] FF_SANITIZE=thread build · ctest -L tsan =="
cmake -B build-tsan -S . -DFF_SANITIZE=thread >/dev/null
cmake --build build-tsan -j "$JOBS" \
  --target test_parallel_explorer test_determinism test_concurrency
ctest --test-dir build-tsan -L tsan --output-on-failure -j "$JOBS"

echo "== [4/4] FF_SANITIZE=address build · ctest -L asan =="
cmake -B build-asan -S . -DFF_SANITIZE=address >/dev/null
cmake --build build-asan -j "$JOBS" \
  --target test_fuzzer test_shrink test_fuzz_smoke test_sim test_faults
ctest --test-dir build-asan -L asan --output-on-failure -j "$JOBS"

echo "OK: all four configurations passed"
