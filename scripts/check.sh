#!/usr/bin/env bash
# Two-configuration verification gate:
#   1. default build  → the fast `tier1` test label (all unit suites);
#   2. FF_SANITIZE=thread build → the multi-threaded suites (label `tsan`,
#      i.e. the parallel-explorer differential harness and the real-thread
#      stress suites) under ThreadSanitizer.
# Usage: scripts/check.sh   (from anywhere inside the repo)
set -euo pipefail
cd "$(dirname "$0")/.."
JOBS="${JOBS:-$(nproc)}"

echo "== [1/2] default build · ctest -L tier1 =="
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS"
ctest --test-dir build -L tier1 --output-on-failure -j "$JOBS"

echo "== [2/2] FF_SANITIZE=thread build · ctest -L tsan =="
cmake -B build-tsan -S . -DFF_SANITIZE=thread >/dev/null
cmake --build build-tsan -j "$JOBS" \
  --target test_parallel_explorer test_determinism test_concurrency
ctest --test-dir build-tsan -L tsan --output-on-failure -j "$JOBS"

echo "OK: both configurations passed"
