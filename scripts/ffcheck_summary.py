#!/usr/bin/env python3
"""Print a one-screen summary of an ffcheck --json report.

Usage: scripts/ffcheck_summary.py build/ffcheck-report.json

One line per registry program: the five analysis verdicts, the exact
static-footprint fraction (A1), the proved-immune object count (A2) and
the loop certificates (A3).  Exit status mirrors the analyzer: 0 when
every obligation holds, 1 when any analysis is violated, 2 when the
report is unreadable.
"""
import json
import sys


def main(argv):
    if len(argv) != 2:
        print("usage: ffcheck_summary.py <report.json>", file=sys.stderr)
        return 2
    try:
        with open(argv[1], encoding="utf-8") as fh:
            report = json.load(fh)
    except (OSError, ValueError) as err:
        print(f"ffcheck_summary: cannot read {argv[1]}: {err}",
              file=sys.stderr)
        return 2

    programs = report.get("programs", [])
    immune_total = 0
    violated = []
    print(f"ffcheck summary: {len(programs)} registry program(s) analyzed")
    for p in programs:
        verdicts = []
        for key in ("a1", "a2", "a3", "a4", "a5"):
            verdict = p.get(key, {}).get("verdict", "?")
            verdicts.append(f"{key.upper()}:{verdict}")
            if verdict == "violated":
                violated.append(f"{p.get('program', '?')}/{key.upper()}")
        a1 = p.get("a1", {})
        a2 = p.get("a2", {})
        a3 = p.get("a3", {})
        immune = sum(1 for o in a2.get("objects", []) if o.get("immune"))
        immune_total += immune
        loops = a3.get("loops", [])
        counted = sum(1 for l in loops if l.get("kind") == "counted")
        print(f"  {p.get('program', '?'):20s} {' '.join(verdicts)}  "
              f"footprints {a1.get('exact_sites', 0)}/"
              f"{a1.get('shared_sites', 0)} exact, "
              f"{immune}/{len(a2.get('objects', []))} objects immune, "
              f"{counted}/{len(loops)} loop(s) counted")
    print(f"  proved overriding-immune objects: {immune_total}")
    if violated:
        print(f"  VIOLATED obligations: {', '.join(violated)}",
              file=sys.stderr)
    return 0 if report.get("ok") and not violated else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
