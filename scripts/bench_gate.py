#!/usr/bin/env python3
"""Assert bench reports clear their acceptance bars.

Usage: scripts/bench_gate.py <BENCH_B3.json> [<BENCH_B5.json> ...]

Each report is dispatched on its "bench" field.

B3 gates (smoke and full mode alike):
  * census_states_match is true — the reduced explorer visited a state
    set consistent with the unreduced census (differential soundness);
  * reduction_factor >= 5 — symmetry + sleep sets shrink the symmetric
    reference instance by at least 5x;
  * ir_census_match is true — the IrMachine interpreter and the retired
    hand-written machines explore the identical state graph;
  * ir_overhead <= 0.02 — the ffgen-GENERATED machines machine_factory
    selects cost at most 2% over the hand-written machines on the
    hot-path instance (straight-line codegen owes native speed; the
    interpreter's cost is reported separately as interpreter_overhead,
    informational);
  * codegen_census_match is true — generated and interpreted machines
    produce the identical census for every simulable registry protocol;
  * immune_census_match is true — skipping overriding-fault branches on
    ffcheck's proved-immune objects leaves the census bit-identical for
    every simulable registry protocol;
  * immune_prune_factor >= 1.0 — the A2 pruning never adds work
    ((checks+skips)/checks; > 1 whenever an immunity proof fired);
  * pool_batch.speedup >= 2.0 — one batch_deliver sweep over a
    StatePool block beats per-lane interpreter delivery at least 2x
    (median of paired per-round rate ratios).

B5 gates:
  * crash_free_census_match is true for every crash_growth_* section —
    crash budget 0 reproduces the non-recoverable original's census
    exactly (the crash plumbing is free when unused);
  * every growth_factor_* >= 1 and the budget-1 growth stays under
    MAX_CRASH_GROWTH_B1 — the crash branch grows the state space but
    must not blow it up on the reference instances;
  * every explore completed (complete_b0/b1/b2 all true);
  * recoverable_latency.all_ok is true and total_crashes > 0 — every
    thread trial reached consensus AND real crash/restart cycles ran.

B6 gates:
  * throughput.speedup >= 2.0 — the batched owner-computes frontier
    explorer beats the work-stealing parallel DFS by at least 2x in
    states/sec on the staged f=1 t=2 distinct-inputs instance (median
    of paired per-round ratios, both engines at the same thread count);
  * throughput.census_match is true — the frontier census stayed
    bit-equal to the parallel engine's on every round;
  * throughput.complete is true — both engines covered the whole
    reachable space within limits on every round;
  * spill.spill_parity is true — the forced-spill run (one-byte
    watermark, every wave spilled) reproduced the in-memory census
    exactly AND actually wrote runs.

B7 gates:
  * speedup >= 100 — re-running the reference job against a warm census
    cache (cold_seconds / warm_seconds, warm = median of the warm reps)
    must beat re-exploring by two orders of magnitude;
  * report_match is true — the warm Report's canonical JSON is
    byte-identical to the cold run's;
  * cache_hit is true and zero_fresh_states is true — the warm runs
    were answered by the cache without expanding a single state;
  * cold_was_hit is false — the cold run really ran (fresh directory).

Exit status: 0 when all gates hold, 1 when any fails, 2 when a report
is unreadable or missing a gated field.
"""
import json
import sys

MIN_REDUCTION_FACTOR = 5.0
MAX_IR_OVERHEAD = 0.02
MAX_CRASH_GROWTH_B1 = 64.0
MIN_IMMUNE_PRUNE_FACTOR = 1.0
MIN_POOL_BATCH_SPEEDUP = 2.0
MIN_FRONTIER_SPEEDUP = 2.0
MIN_WARM_SPEEDUP = 100.0


def gate_b3(report):
    factor = float(report["reduction_factor"])
    census_ok = bool(report["census_states_match"])
    reduced = int(report["reduced"]["peak_states"])
    unreduced = int(report["unreduced"]["peak_states"])
    ir_overhead = float(report["ir_overhead"])
    ir_census_ok = bool(report["ir_census_match"])
    codegen_census_ok = bool(report["codegen_census_match"])
    interp_overhead = float(report.get("interpreter_overhead", 0.0))
    immune_census_ok = bool(report["immune_census_match"])
    immune_factor = float(report["immune_prune_factor"])
    pool_speedup = float(report["pool_batch"]["speedup"])

    mode = "smoke" if report.get("smoke") else "full"
    print(f"bench gate B3 ({mode}): reduction {unreduced} -> {reduced} "
          f"states ({factor:.2f}x), census match: {census_ok}, "
          f"generated overhead: {ir_overhead:.3f} (interpreter: "
          f"{interp_overhead:.3f}), ir census match: {ir_census_ok}, "
          f"codegen census match: {codegen_census_ok}, immune prune "
          f"{immune_factor:.2f}x (census match: {immune_census_ok}), "
          f"pool batch {pool_speedup:.2f}x")

    failed = False
    if not census_ok:
        print("bench_gate: FAIL — reduced census diverges from unreduced",
              file=sys.stderr)
        failed = True
    if factor < MIN_REDUCTION_FACTOR:
        print(f"bench_gate: FAIL — reduction factor {factor:.2f} < "
              f"{MIN_REDUCTION_FACTOR}", file=sys.stderr)
        failed = True
    if not ir_census_ok:
        print("bench_gate: FAIL — IR machines diverge from the hand-written "
              "state graph", file=sys.stderr)
        failed = True
    if not codegen_census_ok:
        print("bench_gate: FAIL — a generated machine diverges from the "
              "IrMachine oracle census", file=sys.stderr)
        failed = True
    if ir_overhead > MAX_IR_OVERHEAD:
        print(f"bench_gate: FAIL — generated-machine overhead "
              f"{ir_overhead:.3f} > {MAX_IR_OVERHEAD}", file=sys.stderr)
        failed = True
    if not immune_census_ok:
        print("bench_gate: FAIL — A2 immunity pruning changed the census "
              "of a registry protocol", file=sys.stderr)
        failed = True
    if immune_factor < MIN_IMMUNE_PRUNE_FACTOR:
        print(f"bench_gate: FAIL — immune prune factor {immune_factor:.2f} "
              f"< {MIN_IMMUNE_PRUNE_FACTOR}", file=sys.stderr)
        failed = True
    if pool_speedup < MIN_POOL_BATCH_SPEEDUP:
        print(f"bench_gate: FAIL — pool batch speedup {pool_speedup:.2f} < "
              f"{MIN_POOL_BATCH_SPEEDUP}", file=sys.stderr)
        failed = True
    return failed


def gate_b5(report):
    failed = False
    mode = "smoke" if report.get("smoke") else "full"
    for key in ("crash_growth_staged", "crash_growth_cas"):
        growth = report[key]
        protocol = growth["protocol"]
        census_ok = bool(growth["crash_free_census_match"])
        factor_b1 = float(growth["growth_factor_b1"])
        factor_b2 = float(growth["growth_factor_b2"])
        complete = all(bool(growth[f"complete_b{b}"]) for b in (0, 1, 2))
        print(f"bench gate B5 ({mode}): {protocol} crash growth "
              f"b1 {factor_b1:.2f}x b2 {factor_b2:.2f}x, budget-0 census "
              f"match: {census_ok}, complete: {complete}")
        if not census_ok:
            print(f"bench_gate: FAIL — {protocol} budget-0 census diverges "
                  "from the non-recoverable original", file=sys.stderr)
            failed = True
        if factor_b1 < 1.0 or factor_b2 < factor_b1:
            print(f"bench_gate: FAIL — {protocol} crash growth not monotone "
                  f"(b1 {factor_b1:.2f}, b2 {factor_b2:.2f})",
                  file=sys.stderr)
            failed = True
        if factor_b1 > MAX_CRASH_GROWTH_B1:
            print(f"bench_gate: FAIL — {protocol} budget-1 growth "
                  f"{factor_b1:.2f}x > {MAX_CRASH_GROWTH_B1}x",
                  file=sys.stderr)
            failed = True
        if not complete:
            print(f"bench_gate: FAIL — {protocol} crash explore truncated",
                  file=sys.stderr)
            failed = True

    latency = report["recoverable_latency"]
    all_ok = bool(latency["all_ok"])
    crashes = int(latency["total_crashes"])
    print(f"bench gate B5 ({mode}): {latency['trials']} thread trials, "
          f"{crashes} crash/restart cycles, crash-free "
          f"{float(latency['crash_free_mean_ms']):.3f} ms vs crashed "
          f"{float(latency['crashed_mean_ms']):.3f} ms per trial, "
          f"all ok: {all_ok}")
    if not all_ok:
        print("bench_gate: FAIL — a recoverable-consensus thread trial "
              "violated consensus", file=sys.stderr)
        failed = True
    if crashes <= 0:
        print("bench_gate: FAIL — no crash/restart cycle ran: the latency "
              "campaign never exercised recovery", file=sys.stderr)
        failed = True
    return failed


def gate_b6(report):
    failed = False
    mode = "smoke" if report.get("smoke") else "full"
    throughput = report["throughput"]
    speedup = float(throughput["speedup"])
    census_ok = bool(throughput["census_match"])
    complete = bool(throughput["complete"])
    spill = report["spill"]
    spill_parity = bool(spill["spill_parity"])

    print(f"bench gate B6 ({mode}): {throughput['protocol']} — "
          f"{int(throughput['states'])} states in "
          f"{int(throughput['waves'])} waves, frontier "
          f"{float(throughput['frontier_mean_seconds']):.3f} s vs parallel "
          f"{float(throughput['parallel_mean_seconds']):.3f} s "
          f"({speedup:.2f}x median over {int(throughput['reps'])} paired "
          f"rounds), census match: {census_ok}, complete: {complete}, "
          f"spill parity: {spill_parity} "
          f"({int(spill['spill_runs'])} runs, "
          f"{int(spill['spill_bytes'])} bytes)")

    if speedup < MIN_FRONTIER_SPEEDUP:
        print(f"bench_gate: FAIL — frontier speedup {speedup:.2f} < "
              f"{MIN_FRONTIER_SPEEDUP} over parallel_explore",
              file=sys.stderr)
        failed = True
    if not census_ok:
        print("bench_gate: FAIL — frontier census diverged from the "
              "parallel engine", file=sys.stderr)
        failed = True
    if not complete:
        print("bench_gate: FAIL — a throughput round truncated its "
              "exploration", file=sys.stderr)
        failed = True
    if not spill_parity:
        print("bench_gate: FAIL — forced-spill census diverged from the "
              "in-memory census (or no run was written)", file=sys.stderr)
        failed = True
    return failed


def gate_b7(report):
    failed = False
    mode = "smoke" if report.get("smoke") else "full"
    speedup = float(report["speedup"])
    report_match = bool(report["report_match"])
    cache_hit = bool(report["cache_hit"])
    zero_fresh = bool(report["zero_fresh_states"])
    cold_was_hit = bool(report["cold_was_hit"])

    print(f"bench gate B7 ({mode}): {report['protocol']} — "
          f"{int(report['states'])} states, cold "
          f"{float(report['cold_seconds']):.3f} s vs warm "
          f"{float(report['warm_seconds']) * 1e3:.3f} ms "
          f"({speedup:.0f}x), report match: {report_match}, "
          f"cache hit: {cache_hit}, zero fresh states: {zero_fresh}")

    if speedup < MIN_WARM_SPEEDUP:
        print(f"bench_gate: FAIL — warm-cache speedup {speedup:.1f} < "
              f"{MIN_WARM_SPEEDUP}", file=sys.stderr)
        failed = True
    if not report_match:
        print("bench_gate: FAIL — warm Report is not byte-identical to the "
              "cold Report", file=sys.stderr)
        failed = True
    if not cache_hit:
        print("bench_gate: FAIL — a warm run missed the cache",
              file=sys.stderr)
        failed = True
    if not zero_fresh:
        print("bench_gate: FAIL — a warm run expanded fresh states",
              file=sys.stderr)
        failed = True
    if cold_was_hit:
        print("bench_gate: FAIL — the cold run hit a stale cache entry "
              "(directory was not fresh)", file=sys.stderr)
        failed = True
    return failed


def main(argv):
    if len(argv) < 2:
        print("usage: bench_gate.py <BENCH.json> [<BENCH.json> ...]",
              file=sys.stderr)
        return 2
    failed = False
    for path in argv[1:]:
        try:
            with open(path, encoding="utf-8") as fh:
                report = json.load(fh)
        except (OSError, ValueError) as err:
            print(f"bench_gate: cannot read {path}: {err}", file=sys.stderr)
            return 2
        bench = report.get("bench")
        try:
            if bench == "B3":
                failed |= gate_b3(report)
            elif bench == "B5":
                failed |= gate_b5(report)
            elif bench == "B6":
                failed |= gate_b6(report)
            elif bench == "B7":
                failed |= gate_b7(report)
            else:
                print(f"bench_gate: {path} has unknown bench id {bench!r}",
                      file=sys.stderr)
                return 2
        except (KeyError, TypeError, ValueError) as err:
            print(f"bench_gate: {path} missing gated field: {err}",
                  file=sys.stderr)
            return 2
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
