#!/usr/bin/env python3
"""Assert the B3 bench report clears the reduction acceptance bars.

Usage: scripts/bench_gate.py <BENCH_B3.json>

Gates (smoke and full mode alike):
  * census_states_match is true — the reduced explorer visited a state
    set consistent with the unreduced census (differential soundness);
  * reduction_factor >= 5 — symmetry + sleep sets shrink the symmetric
    reference instance by at least 5x;
  * ir_census_match is true — the registry IR machines and the retired
    hand-written machines explore the identical state graph;
  * ir_overhead <= 0.20 — the protocol-IR interpreter costs at most 20%
    over the hand-written machines on the hot-path instance.

Exit status: 0 when all gates hold, 1 when any fails, 2 when the
report is unreadable or missing a gated field.
"""
import json
import sys

MIN_REDUCTION_FACTOR = 5.0
MAX_IR_OVERHEAD = 0.20


def main(argv):
    if len(argv) != 2:
        print("usage: bench_gate.py <BENCH_B3.json>", file=sys.stderr)
        return 2
    try:
        with open(argv[1], encoding="utf-8") as fh:
            report = json.load(fh)
    except (OSError, ValueError) as err:
        print(f"bench_gate: cannot read {argv[1]}: {err}", file=sys.stderr)
        return 2

    try:
        factor = float(report["reduction_factor"])
        census_ok = bool(report["census_states_match"])
        reduced = int(report["reduced"]["peak_states"])
        unreduced = int(report["unreduced"]["peak_states"])
        ir_overhead = float(report["ir_overhead"])
        ir_census_ok = bool(report["ir_census_match"])
    except (KeyError, TypeError, ValueError) as err:
        print(f"bench_gate: report missing gated field: {err}",
              file=sys.stderr)
        return 2

    mode = "smoke" if report.get("smoke") else "full"
    print(f"bench gate ({mode}): reduction {unreduced} -> {reduced} states "
          f"({factor:.2f}x), census match: {census_ok}, "
          f"ir overhead: {ir_overhead:.3f} (census match: {ir_census_ok})")

    failed = False
    if not census_ok:
        print("bench_gate: FAIL — reduced census diverges from unreduced",
              file=sys.stderr)
        failed = True
    if factor < MIN_REDUCTION_FACTOR:
        print(f"bench_gate: FAIL — reduction factor {factor:.2f} < "
              f"{MIN_REDUCTION_FACTOR}", file=sys.stderr)
        failed = True
    if not ir_census_ok:
        print("bench_gate: FAIL — IR machines diverge from the hand-written "
              "state graph", file=sys.stderr)
        failed = True
    if ir_overhead > MAX_IR_OVERHEAD:
        print(f"bench_gate: FAIL — IR interpreter overhead "
              f"{ir_overhead:.3f} > {MAX_IR_OVERHEAD}", file=sys.stderr)
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
