#!/usr/bin/env python3
"""Print a one-screen summary of an ff-lint --json report.

Usage: scripts/fflint_summary.py build/fflint-report.json

Exit status mirrors the linter: 0 when the report carries no
unsuppressed findings, 1 otherwise, 2 when the report is unreadable.
"""
import json
import sys


def main(argv):
    if len(argv) != 2:
        print("usage: fflint_summary.py <report.json>", file=sys.stderr)
        return 2
    try:
        with open(argv[1], encoding="utf-8") as fh:
            report = json.load(fh)
    except (OSError, ValueError) as err:
        print(f"fflint_summary: cannot read {argv[1]}: {err}", file=sys.stderr)
        return 2

    counts = report.get("counts", {})
    total = sum(counts.values())
    print(f"ff-lint summary: {report.get('files_scanned', 0)} files scanned, "
          f"{total} unsuppressed finding(s)")
    for rule in sorted(counts):
        if counts[rule]:
            print(f"  {rule}: {counts[rule]}")

    suppressions = report.get("suppressions", [])
    if suppressions:
        print(f"  suppressions in effect: {len(suppressions)}")
        for s in suppressions:
            mark = "" if s.get("used") else "  [UNUSED — remove]"
            print(f"    {s['file']}:{s['line']} allow({s['rule']}): "
                  f"{s['justification']}{mark}")
    return 0 if total == 0 else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
