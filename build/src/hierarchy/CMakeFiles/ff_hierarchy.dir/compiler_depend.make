# Empty compiler generated dependencies file for ff_hierarchy.
# This may be replaced when dependencies are built.
