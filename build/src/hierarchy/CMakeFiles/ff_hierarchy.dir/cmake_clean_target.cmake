file(REMOVE_RECURSE
  "libff_hierarchy.a"
)
