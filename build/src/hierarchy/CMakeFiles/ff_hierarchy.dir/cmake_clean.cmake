file(REMOVE_RECURSE
  "CMakeFiles/ff_hierarchy.dir/consensus_number.cpp.o"
  "CMakeFiles/ff_hierarchy.dir/consensus_number.cpp.o.d"
  "libff_hierarchy.a"
  "libff_hierarchy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ff_hierarchy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
