# Empty compiler generated dependencies file for ff_consensus.
# This may be replaced when dependencies are built.
