file(REMOVE_RECURSE
  "libff_consensus.a"
)
