file(REMOVE_RECURSE
  "CMakeFiles/ff_consensus.dir/machines.cpp.o"
  "CMakeFiles/ff_consensus.dir/machines.cpp.o.d"
  "libff_consensus.a"
  "libff_consensus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ff_consensus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
