file(REMOVE_RECURSE
  "libff_sched.a"
)
