# Empty compiler generated dependencies file for ff_sched.
# This may be replaced when dependencies are built.
