file(REMOVE_RECURSE
  "CMakeFiles/ff_sched.dir/adversary.cpp.o"
  "CMakeFiles/ff_sched.dir/adversary.cpp.o.d"
  "CMakeFiles/ff_sched.dir/explorer.cpp.o"
  "CMakeFiles/ff_sched.dir/explorer.cpp.o.d"
  "CMakeFiles/ff_sched.dir/random_walk.cpp.o"
  "CMakeFiles/ff_sched.dir/random_walk.cpp.o.d"
  "CMakeFiles/ff_sched.dir/sim_world.cpp.o"
  "CMakeFiles/ff_sched.dir/sim_world.cpp.o.d"
  "libff_sched.a"
  "libff_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ff_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
