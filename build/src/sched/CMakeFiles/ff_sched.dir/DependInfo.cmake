
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/adversary.cpp" "src/sched/CMakeFiles/ff_sched.dir/adversary.cpp.o" "gcc" "src/sched/CMakeFiles/ff_sched.dir/adversary.cpp.o.d"
  "/root/repo/src/sched/explorer.cpp" "src/sched/CMakeFiles/ff_sched.dir/explorer.cpp.o" "gcc" "src/sched/CMakeFiles/ff_sched.dir/explorer.cpp.o.d"
  "/root/repo/src/sched/random_walk.cpp" "src/sched/CMakeFiles/ff_sched.dir/random_walk.cpp.o" "gcc" "src/sched/CMakeFiles/ff_sched.dir/random_walk.cpp.o.d"
  "/root/repo/src/sched/sim_world.cpp" "src/sched/CMakeFiles/ff_sched.dir/sim_world.cpp.o" "gcc" "src/sched/CMakeFiles/ff_sched.dir/sim_world.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ff_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
