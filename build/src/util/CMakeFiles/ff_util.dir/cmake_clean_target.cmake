file(REMOVE_RECURSE
  "libff_util.a"
)
