file(REMOVE_RECURSE
  "CMakeFiles/ff_util.dir/cli.cpp.o"
  "CMakeFiles/ff_util.dir/cli.cpp.o.d"
  "CMakeFiles/ff_util.dir/table.cpp.o"
  "CMakeFiles/ff_util.dir/table.cpp.o.d"
  "libff_util.a"
  "libff_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ff_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
