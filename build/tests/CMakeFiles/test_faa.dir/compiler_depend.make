# Empty compiler generated dependencies file for test_faa.
# This may be replaced when dependencies are built.
