file(REMOVE_RECURSE
  "CMakeFiles/test_shortest_witness.dir/test_shortest_witness.cpp.o"
  "CMakeFiles/test_shortest_witness.dir/test_shortest_witness.cpp.o.d"
  "test_shortest_witness"
  "test_shortest_witness.pdb"
  "test_shortest_witness[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_shortest_witness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
