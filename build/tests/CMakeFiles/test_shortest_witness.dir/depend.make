# Empty dependencies file for test_shortest_witness.
# This may be replaced when dependencies are built.
