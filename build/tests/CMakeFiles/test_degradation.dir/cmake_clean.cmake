file(REMOVE_RECURSE
  "CMakeFiles/test_degradation.dir/test_degradation.cpp.o"
  "CMakeFiles/test_degradation.dir/test_degradation.cpp.o.d"
  "test_degradation"
  "test_degradation.pdb"
  "test_degradation[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_degradation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
