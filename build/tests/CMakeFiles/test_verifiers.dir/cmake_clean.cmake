file(REMOVE_RECURSE
  "CMakeFiles/test_verifiers.dir/test_verifiers.cpp.o"
  "CMakeFiles/test_verifiers.dir/test_verifiers.cpp.o.d"
  "test_verifiers"
  "test_verifiers.pdb"
  "test_verifiers[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_verifiers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
