# Empty dependencies file for test_verifiers.
# This may be replaced when dependencies are built.
