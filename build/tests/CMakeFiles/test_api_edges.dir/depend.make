# Empty dependencies file for test_api_edges.
# This may be replaced when dependencies are built.
