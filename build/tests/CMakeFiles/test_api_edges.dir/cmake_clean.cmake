file(REMOVE_RECURSE
  "CMakeFiles/test_api_edges.dir/test_api_edges.cpp.o"
  "CMakeFiles/test_api_edges.dir/test_api_edges.cpp.o.d"
  "test_api_edges"
  "test_api_edges.pdb"
  "test_api_edges[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_api_edges.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
