file(REMOVE_RECURSE
  "CMakeFiles/test_cas_semantics.dir/test_cas_semantics.cpp.o"
  "CMakeFiles/test_cas_semantics.dir/test_cas_semantics.cpp.o.d"
  "test_cas_semantics"
  "test_cas_semantics.pdb"
  "test_cas_semantics[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cas_semantics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
