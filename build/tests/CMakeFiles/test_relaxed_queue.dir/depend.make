# Empty dependencies file for test_relaxed_queue.
# This may be replaced when dependencies are built.
