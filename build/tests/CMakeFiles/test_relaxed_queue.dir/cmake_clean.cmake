file(REMOVE_RECURSE
  "CMakeFiles/test_relaxed_queue.dir/test_relaxed_queue.cpp.o"
  "CMakeFiles/test_relaxed_queue.dir/test_relaxed_queue.cpp.o.d"
  "test_relaxed_queue"
  "test_relaxed_queue.pdb"
  "test_relaxed_queue[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_relaxed_queue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
