file(REMOVE_RECURSE
  "CMakeFiles/test_longest_execution.dir/test_longest_execution.cpp.o"
  "CMakeFiles/test_longest_execution.dir/test_longest_execution.cpp.o.d"
  "test_longest_execution"
  "test_longest_execution.pdb"
  "test_longest_execution[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_longest_execution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
