# Empty dependencies file for test_longest_execution.
# This may be replaced when dependencies are built.
