# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_adversary[1]_include.cmake")
include("/root/repo/build/tests/test_api_edges[1]_include.cmake")
include("/root/repo/build/tests/test_cas_semantics[1]_include.cmake")
include("/root/repo/build/tests/test_concurrency[1]_include.cmake")
include("/root/repo/build/tests/test_degradation[1]_include.cmake")
include("/root/repo/build/tests/test_faa[1]_include.cmake")
include("/root/repo/build/tests/test_faults[1]_include.cmake")
include("/root/repo/build/tests/test_longest_execution[1]_include.cmake")
include("/root/repo/build/tests/test_mutation[1]_include.cmake")
include("/root/repo/build/tests/test_protocols[1]_include.cmake")
include("/root/repo/build/tests/test_registers[1]_include.cmake")
include("/root/repo/build/tests/test_relaxed_queue[1]_include.cmake")
include("/root/repo/build/tests/test_shortest_witness[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_sim_trace[1]_include.cmake")
include("/root/repo/build/tests/test_tas[1]_include.cmake")
include("/root/repo/build/tests/test_theorems[1]_include.cmake")
include("/root/repo/build/tests/test_universal[1]_include.cmake")
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_verifiers[1]_include.cmake")
