file(REMOVE_RECURSE
  "CMakeFiles/bench_e1_two_process.dir/bench_e1_two_process.cpp.o"
  "CMakeFiles/bench_e1_two_process.dir/bench_e1_two_process.cpp.o.d"
  "bench_e1_two_process"
  "bench_e1_two_process.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e1_two_process.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
