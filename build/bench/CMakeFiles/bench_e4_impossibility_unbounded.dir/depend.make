# Empty dependencies file for bench_e4_impossibility_unbounded.
# This may be replaced when dependencies are built.
