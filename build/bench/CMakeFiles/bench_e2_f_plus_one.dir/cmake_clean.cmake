file(REMOVE_RECURSE
  "CMakeFiles/bench_e2_f_plus_one.dir/bench_e2_f_plus_one.cpp.o"
  "CMakeFiles/bench_e2_f_plus_one.dir/bench_e2_f_plus_one.cpp.o.d"
  "bench_e2_f_plus_one"
  "bench_e2_f_plus_one.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e2_f_plus_one.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
