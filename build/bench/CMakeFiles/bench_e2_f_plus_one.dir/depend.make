# Empty dependencies file for bench_e2_f_plus_one.
# This may be replaced when dependencies are built.
