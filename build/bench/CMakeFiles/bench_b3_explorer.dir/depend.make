# Empty dependencies file for bench_b3_explorer.
# This may be replaced when dependencies are built.
