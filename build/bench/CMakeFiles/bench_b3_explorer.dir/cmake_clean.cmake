file(REMOVE_RECURSE
  "CMakeFiles/bench_b3_explorer.dir/bench_b3_explorer.cpp.o"
  "CMakeFiles/bench_b3_explorer.dir/bench_b3_explorer.cpp.o.d"
  "bench_b3_explorer"
  "bench_b3_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_b3_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
