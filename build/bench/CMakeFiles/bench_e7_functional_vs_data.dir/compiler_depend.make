# Empty compiler generated dependencies file for bench_e7_functional_vs_data.
# This may be replaced when dependencies are built.
