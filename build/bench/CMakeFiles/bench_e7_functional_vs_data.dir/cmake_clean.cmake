file(REMOVE_RECURSE
  "CMakeFiles/bench_e7_functional_vs_data.dir/bench_e7_functional_vs_data.cpp.o"
  "CMakeFiles/bench_e7_functional_vs_data.dir/bench_e7_functional_vs_data.cpp.o.d"
  "bench_e7_functional_vs_data"
  "bench_e7_functional_vs_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e7_functional_vs_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
