file(REMOVE_RECURSE
  "CMakeFiles/bench_b1_cas_cost.dir/bench_b1_cas_cost.cpp.o"
  "CMakeFiles/bench_b1_cas_cost.dir/bench_b1_cas_cost.cpp.o.d"
  "bench_b1_cas_cost"
  "bench_b1_cas_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_b1_cas_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
