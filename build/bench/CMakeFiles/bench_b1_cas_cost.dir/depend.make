# Empty dependencies file for bench_b1_cas_cost.
# This may be replaced when dependencies are built.
