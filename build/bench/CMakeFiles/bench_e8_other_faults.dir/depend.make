# Empty dependencies file for bench_e8_other_faults.
# This may be replaced when dependencies are built.
