# Empty compiler generated dependencies file for bench_e9_faulty_faa.
# This may be replaced when dependencies are built.
