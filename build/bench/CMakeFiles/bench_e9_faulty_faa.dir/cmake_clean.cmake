file(REMOVE_RECURSE
  "CMakeFiles/bench_e9_faulty_faa.dir/bench_e9_faulty_faa.cpp.o"
  "CMakeFiles/bench_e9_faulty_faa.dir/bench_e9_faulty_faa.cpp.o.d"
  "bench_e9_faulty_faa"
  "bench_e9_faulty_faa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e9_faulty_faa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
