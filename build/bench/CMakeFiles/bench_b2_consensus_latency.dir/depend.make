# Empty dependencies file for bench_b2_consensus_latency.
# This may be replaced when dependencies are built.
