file(REMOVE_RECURSE
  "CMakeFiles/bench_b2_consensus_latency.dir/bench_b2_consensus_latency.cpp.o"
  "CMakeFiles/bench_b2_consensus_latency.dir/bench_b2_consensus_latency.cpp.o.d"
  "bench_b2_consensus_latency"
  "bench_b2_consensus_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_b2_consensus_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
