file(REMOVE_RECURSE
  "CMakeFiles/bench_e10_relaxed_queue.dir/bench_e10_relaxed_queue.cpp.o"
  "CMakeFiles/bench_e10_relaxed_queue.dir/bench_e10_relaxed_queue.cpp.o.d"
  "bench_e10_relaxed_queue"
  "bench_e10_relaxed_queue.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e10_relaxed_queue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
