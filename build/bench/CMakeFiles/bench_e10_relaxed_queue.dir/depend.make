# Empty dependencies file for bench_e10_relaxed_queue.
# This may be replaced when dependencies are built.
