# Empty dependencies file for bench_e6_hierarchy.
# This may be replaced when dependencies are built.
