# Empty dependencies file for bench_e5_impossibility_bounded.
# This may be replaced when dependencies are built.
