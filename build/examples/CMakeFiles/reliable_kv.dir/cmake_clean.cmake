file(REMOVE_RECURSE
  "CMakeFiles/reliable_kv.dir/reliable_kv.cpp.o"
  "CMakeFiles/reliable_kv.dir/reliable_kv.cpp.o.d"
  "reliable_kv"
  "reliable_kv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reliable_kv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
