# Empty dependencies file for reliable_kv.
# This may be replaced when dependencies are built.
