// fault_explorer — interactive front-end to the exhaustive model checker.
//
// Pick a protocol, a fault kind and an (f, t, n) configuration; the tool
// explores EVERY schedule and fault placement and reports either a proof
// of correctness or a concrete violating execution, replayed step by step.
//
// Every run is described by a verify::JobSpec and executed through
// verify::run() — the same canonical job layer the benches, the
// differential tests and the future ffd daemon use — so a run is
// hashable: pass --cache-dir and an identical job is answered from the
// persistent census cache instead of re-explored (DESIGN.md §3j).
//
//   $ ./fault_explorer --list-protocols
//   $ ./fault_explorer --protocol staged --f 1 --t 1 --n 3 --kind overriding
//   $ ./fault_explorer --protocol herlihy --n 2 --kind silent --t 1
//   $ ./fault_explorer --protocol staged --t 2 --n 3 --cache-dir ~/.ffcache
//   $ ./fault_explorer cache stats --cache-dir ~/.ffcache
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>

#include "proto/analysis/analysis.hpp"
#include "proto/registry.hpp"
#include "util/cli.hpp"
#include "util/json.hpp"
#include "verify/cache.hpp"
#include "verify/run.hpp"

namespace {

using namespace ff;

void print_protocols() {
  std::cout << "registered protocols (canonical name [aliases] — summary):\n";
  for (const auto& info : proto::ProtocolRegistry::instance().all()) {
    std::cout << "  " << info.name;
    for (const auto& alias : info.aliases) std::cout << " | " << alias;
    if (!info.simulable) std::cout << "  [queue client — not simulable]";
    std::cout << "\n      " << info.summary << '\n';
    for (const auto& param : info.params) {
      std::cout << "      param " << param.name << " (default "
                << param.fallback << "): " << param.help << '\n';
    }
  }
}

void print_usage() {
  std::cout <<
      "usage: fault_explorer [options]\n"
      "       fault_explorer cache stats|gc|invalidate <protocol> "
      "--cache-dir <dir>\n"
      "  --list-protocols  print the protocol registry and exit\n"
      "  --protocol  a registry name or alias, e.g. single-cas | herlihy |\n"
      "              fp1 | staged | retry-silent | announce-cas | tas |\n"
      "              recoverable-cas | recoverable-staged    (default staged)\n"
      "  --kind      overriding | silent | invisible | arbitrary |\n"
      "              nonresponsive | data | none              (default overriding)\n"
      "  --f         faulty-object bound / staged object count (default 1)\n"
      "  --t         faults per object, 0 = unbounded          (default 1)\n"
      "  --n         processes                                 (default 2)\n"
      "  --objects   object count for fp1                      (default f+1)\n"
      "  --state-cap explorer state limit                      (default 4e6)\n"
      "  --engine    dfs | parallel | frontier | fuzz | stress (default dfs;\n"
      "              --threads > 0 without --engine implies parallel).\n"
      "              frontier = batched owner-computes BFS wavefront engine\n"
      "              (DESIGN.md §3i; sleep sets are a DFS notion — the job\n"
      "              layer rejects the combination, this CLI disables them\n"
      "              for frontier runs and says so)\n"
      "  --threads   worker threads for parallel/frontier;\n"
      "              0 = one per hardware thread                (default 0)\n"
      "  --spill-dir frontier only: directory for sorted census spill runs\n"
      "              (witnesses are reconstructed back through the runs)\n"
      "  --mem-limit-mb  frontier only: in-memory watermark in MiB over the\n"
      "              spillable census; exceeded ⇒ spill to --spill-dir\n"
      "              (0 = never spill)                          (default 0)\n"
      "  --no-symmetry    disable process-symmetry reduction (explore one\n"
      "              state per permutation orbit — DESIGN.md §3d);\n"
      "              also disables the fuzzer's canonical novelty signal\n"
      "  --no-sleep-sets  disable sleep-set partial-order reduction\n"
      "              (explorers only; prunes transitions, never states)\n"
      "  --analyze   print the ffcheck analysis report (footprints,\n"
      "              overriding-immunity, loop bounds, recovery proof)\n"
      "              for --protocol and exit; nonzero if violated\n"
      "  --no-immunity-pruning  disable skipping overriding-fault branches\n"
      "              on objects the analyzer proved immune (A2); the\n"
      "              census is identical either way — this flag exists\n"
      "              for differential testing and prune-factor baselines\n"
      "  --crashes   enable process crash-recovery branches (budget 1);\n"
      "              only protocols with a recovery label (recoverable-cas,\n"
      "              recoverable-staged) branch — others are unaffected\n"
      "  --crash-budget  max crashes per process (implies --crashes;\n"
      "              0 = crashes disabled)                     (default 0)\n"
      "  --fuzz      shorthand for --engine fuzz: coverage-guided schedule\n"
      "              fuzzing instead of exhaustive exploration; witnesses\n"
      "              are shrunk before printing\n"
      "  --seed      fuzz/stress seed                           (default 1)\n"
      "  --fuzz-steps  fuzzing budget in simulated steps, 0 = unlimited\n"
      "                                                    (default 2e6)\n"
      "  --fuzz-millis wall-clock budget in ms, 0 = none; a deadline makes\n"
      "              the job uncacheable                       (default 0)\n"
      "  --fuzz-execs  stop after this many executions, 0 = none\n"
      "  --trials    stress engine: real-thread trials          (default 100)\n"
      "  --cache-dir persistent census cache directory: an identical job\n"
      "              (same canonical spec AND same protocol IR) is answered\n"
      "              from disk with zero states expanded\n"
      "  --no-cache  bypass the cache even when --cache-dir is set\n"
      "  --json      write the run summary (canonical job, fingerprint,\n"
      "              cache_hit, full verify::Report) as JSON to this path\n"
      "cache subcommand (requires --cache-dir):\n"
      "  cache stats                 entry/byte/unreadable counts\n"
      "  cache gc                    evict corrupt or stale-version entries\n"
      "  cache invalidate <protocol> evict one protocol's entries\n";
}

/// Replays a witness step by step, printing each operation and the
/// resulting object value (shared by the explorer and fuzzer verdicts).
void print_witness_replay(const sched::SimWorld& world,
                          const sched::Violation& violation) {
  sched::SimWorld replayed = world;
  std::size_t step = 0;
  for (const auto& choice : violation.schedule) {
    if (choice.pid == sched::kAdversaryPid) {
      std::cout << "  " << ++step << ". adversary corrupts memory";
      replayed.apply(choice);
      std::cout << '\n';
      continue;
    }
    const auto op = replayed.pending(choice.pid);
    std::cout << "  " << ++step << ". p" << choice.pid;
    if (choice.crash) {
      // Crash branch: variant 1 = the op's effect lands, the response is
      // lost; variant 0 = the op never reaches shared memory.
      std::cout << " [CRASH " << (choice.fault_variant == 1 ? "after" : "before")
                << " op]";
    } else if (choice.fault) {
      std::cout << " [FAULT]";
    }
    switch (op.type) {
      case sched::OpType::kCas:
        std::cout << " CAS(O" << op.object << ", " << op.expected.to_string()
                  << ", " << op.desired.to_string() << ")";
        break;
      case sched::OpType::kRegRead:
        std::cout << " read R" << op.object;
        break;
      case sched::OpType::kRegWrite:
        std::cout << " R" << op.object << " <- " << op.desired.to_string();
        break;
      case sched::OpType::kNone:
        break;
    }
    replayed.apply(choice);
    if (op.type == sched::OpType::kCas) {
      std::cout << " -> O" << op.object << " = "
                << replayed.object_value(op.object).to_string();
    } else if (op.type == sched::OpType::kRegWrite) {
      std::cout << " -> R" << op.object << " = "
                << replayed.register_value(op.object).to_string();
    }
    if (choice.crash) {
      std::cout << "; p" << choice.pid << " restarts at recover ("
                << replayed.crashes_used(choice.pid) << " crash"
                << (replayed.crashes_used(choice.pid) == 1 ? "" : "es")
                << " used)";
    }
    std::cout << '\n';
  }
  std::cout << "final decisions:\n";
  const auto decisions = replayed.decisions();
  for (std::uint32_t pid = 0; pid < decisions.size(); ++pid) {
    std::cout << "  p" << pid << " -> "
              << (decisions[pid] ? std::to_string(*decisions[pid])
                                 : std::string("(undecided)"))
              << '\n';
  }
}

/// `fault_explorer cache stats|gc|invalidate <protocol> --cache-dir ...`.
int run_cache_command(const util::Cli& cli) {
  const auto& args = cli.positional();
  const std::string dir = cli.get_string("cache-dir", "");
  if (dir.empty()) {
    std::cerr << "cache subcommand requires --cache-dir\n";
    return 2;
  }
  const verify::Cache cache(dir);
  const std::string action = args.size() > 1 ? args[1] : "stats";
  if (action == "stats") {
    const auto stats = cache.stats();
    std::cout << "cache dir      : " << cache.dir() << '\n'
              << "entries        : " << stats.entries << '\n'
              << "bytes          : " << stats.bytes << '\n'
              << "unreadable     : " << stats.unreadable
              << (stats.unreadable > 0 ? "  (run `cache gc`)" : "") << '\n';
    return 0;
  }
  if (action == "gc") {
    std::cout << "evicted        : " << cache.gc()
              << " corrupt or stale-version entries\n";
    return 0;
  }
  if (action == "invalidate") {
    if (args.size() < 3) {
      std::cerr << "usage: fault_explorer cache invalidate <protocol> "
                   "--cache-dir <dir>\n";
      return 2;
    }
    std::cout << "evicted        : " << cache.invalidate(args[2])
              << " entries for protocol " << args[2] << '\n';
    return 0;
  }
  std::cerr << "unknown cache action: " << action
            << " (expected stats | gc | invalidate)\n";
  return 2;
}

/// Builds the canonical job from the CLI vocabulary.
verify::JobSpec spec_from_cli(const util::Cli& cli) {
  verify::JobSpec spec;
  spec.protocol = cli.get_string("protocol", "staged");
  const auto f = cli.get_uint("f", 1);
  const auto t_raw = static_cast<std::uint32_t>(cli.get_uint("t", 1));
  spec.t = t_raw == 0 ? model::kUnbounded : t_raw;
  spec.processes = static_cast<std::uint32_t>(cli.get_uint("n", 2));
  spec.kind =
      verify::fault_kind_from_string(cli.get_string("kind", "overriding"));
  // Map the explorer's CLI vocabulary onto the registry's parameter
  // schema; canonicalization drops keys a protocol's schema lacks.
  spec.params["f"] = f;
  spec.params["n"] = spec.processes;
  spec.params["t"] = spec.t == model::kUnbounded ? 1 : spec.t;
  spec.params["k"] = cli.get_uint("objects", f + 1);

  spec.crash_budget = static_cast<std::uint32_t>(
      cli.get_uint("crash-budget", cli.has("crashes") ? 1 : 0));
  spec.killed_is_violation = spec.kind == model::FaultKind::kNonresponsive;
  spec.symmetry_reduction = !cli.has("no-symmetry");
  spec.sleep_sets = !cli.has("no-sleep-sets");
  spec.immunity_pruning = !cli.has("no-immunity-pruning");
  spec.max_states = cli.get_uint("state-cap", 4'000'000);

  spec.threads = static_cast<std::uint32_t>(cli.get_uint("threads", 0));
  // --threads > 0 without an explicit --engine keeps its historical
  // meaning: the work-stealing parallel DFS.  --fuzz is the historical
  // spelling of --engine fuzz.
  std::string engine =
      cli.get_string("engine", spec.threads > 0 ? "parallel" : "dfs");
  if (cli.has("fuzz")) engine = "fuzz";
  spec.engine = verify::engine_from_string(engine);
  if (spec.engine == verify::Engine::kFrontier && spec.sleep_sets) {
    std::cout << "note: sleep sets are a DFS-path notion; disabled for the "
                 "frontier (BFS) engine\n";
    spec.sleep_sets = false;
  }
  spec.spill_dir = cli.get_string("spill-dir", "");
  spec.mem_limit_bytes =
      cli.get_uint("mem-limit-mb", 0) * (std::uint64_t{1} << 20);

  spec.seed = cli.get_uint("seed", 1);
  spec.fuzz_steps = cli.get_uint("fuzz-steps", 2'000'000);
  spec.fuzz_millis = cli.get_uint("fuzz-millis", 0);
  spec.fuzz_execs = cli.get_uint("fuzz-execs", 0);
  spec.trials = cli.get_uint("trials", 100);
  if (spec.engine == verify::Engine::kStress) {
    // The stress engine runs clean real-thread trials; validate() would
    // reject the simulator-only default kind with a confusing error.
    if (!cli.has("kind")) spec.kind = model::FaultKind::kNone;
  }

  // Historical behavior: a complete, violation-free exhaustive run also
  // reports the machine-checked wait-freedom bound.
  spec.wait_free_bound = spec.engine == verify::Engine::kDfs ||
                         spec.engine == verify::Engine::kParallel ||
                         spec.engine == verify::Engine::kFrontier;
  return spec;
}

void write_json_summary(const std::string& path, const verify::JobSpec& spec,
                        const verify::RunOutcome& outcome) {
  std::ofstream out(path);
  // The spec and report documents are already canonical JSON; splice
  // them verbatim instead of re-walking them through a writer.
  out << "{\"spec\":" << spec.canonical_json()
      << ",\"fingerprint\":\"" << outcome.fingerprint.hex()
      << "\",\"cache_hit\":" << (outcome.cache_hit ? "true" : "false")
      << ",\"fresh_states_expanded\":" << outcome.fresh_states_expanded
      << ",\"report\":" << outcome.report.to_json() << "}\n";
  std::cout << "json           : " << path << '\n';
}

int report_fuzz(const verify::JobSpec& spec,
                const verify::RunOutcome& outcome) {
  const verify::Report& report = outcome.report;
  const verify::FuzzSummary& fuzz = *report.fuzz;
  std::cout << "executions     : " << fuzz.executions << '\n'
            << "steps          : " << fuzz.total_steps << '\n'
            << "unique states  : " << fuzz.unique_states << '\n'
            << "corpus         : " << fuzz.corpus_entries << " schedules\n"
            << "coverage       : "
            << (report.complete ? "requested work finished"
                                : "budget exhausted or stopped early")
            << '\n';
  if (!report.violation) {
    std::cout << "verdict        : no violation found (sampling — NOT a "
                 "proof of correctness)\n";
    return 0;
  }
  std::cout << "verdict        : VIOLATION ("
            << sched::to_string(report.violation->kind) << ")\n"
            << "detail         : " << report.violation->detail << '\n'
            << "found at exec  : " << fuzz.first_violation_exec.value_or(0)
            << '\n'
            << "witness        : " << report.violation->schedule_string()
            << "\n  (shrunk from " << fuzz.witness_steps_found << " to "
            << fuzz.witness_steps_shrunk << " steps)\n\nreplaying witness:\n";
  print_witness_replay(verify::instantiate(spec).world(), *report.violation);
  return 1;
}

int report_stress(const verify::RunOutcome& outcome) {
  const verify::StressSummary& stress = *outcome.report.stress;
  std::cout << "trials         : " << stress.trials << '\n'
            << "ok             : " << stress.ok << '\n'
            << "inconsistent   : " << stress.inconsistent << '\n'
            << "invalid        : " << stress.invalid << '\n'
            << "undecided      : " << stress.undecided << '\n';
  if (stress.trials == stress.ok) {
    std::cout << "verdict        : every real-thread trial reached "
                 "consensus (sampling — NOT a proof)\n";
    return 0;
  }
  std::cout << "verdict        : VIOLATION (first at trial "
            << stress.first_violation.value_or(0) << ")\n";
  return 1;
}

int report_explore(const verify::JobSpec& spec,
                   const verify::RunOutcome& outcome) {
  const verify::Report& report = outcome.report;
  std::cout << "states visited : " << report.states_visited << '\n'
            << "terminal states: " << report.terminal_states << '\n'
            << "max depth      : " << report.max_depth << '\n'
            << "peak memory    : " << (report.peak_bytes >> 10) << " KiB\n"
            << "coverage       : "
            << (report.complete ? "COMPLETE (exhaustive proof)"
                                : "partial (cap hit or stopped early)")
            << '\n';
  if (report.frontier) {
    std::cout << "frontier       : waves=" << report.frontier->waves
              << " forwarded=" << report.frontier->forwarded
              << " batch_sweeps=" << report.frontier->batch_sweeps
              << " memo_hits=" << report.frontier->memo_hits
              << " lanes=" << report.frontier->arena_lanes << '\n';
    if (report.frontier->spill_runs > 0) {
      std::cout << "spill          : runs=" << report.frontier->spill_runs
                << " records=" << report.frontier->spilled_records
                << " bytes=" << report.frontier->spill_bytes << '\n';
    }
  }
  if (report.immunity_skips > 0) {
    std::cout << "A2 pruning     : " << report.immunity_skips
              << " overriding branches skipped via proved-immune objects ("
              << report.immunity_checks << " checked dynamically)\n";
  }

  if (!report.violation) {
    std::cout << "verdict        : no violation — consensus holds for every "
                 "schedule and fault placement explored\n";
    std::cout << "agreed values  : {";
    bool first = true;
    for (const auto v : report.agreed_values) {
      std::cout << (first ? "" : ", ") << v;
      first = false;
    }
    std::cout << "}\n";
    if (report.wait_free_bound) {
      std::cout << "wait-free bound: " << *report.wait_free_bound
                << " total steps in the worst schedule\n";
    }
    return 0;
  }

  std::cout << "verdict        : VIOLATION ("
            << sched::to_string(report.violation->kind) << ")\n"
            << "detail         : " << report.violation->detail << '\n'
            << "witness        : " << report.violation->schedule_string()
            << "\n\nreplaying witness:\n";
  print_witness_replay(verify::instantiate(spec).world(), *report.violation);
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  if (cli.has("help")) {
    print_usage();
    return 0;
  }
  if (cli.has("list-protocols")) {
    print_protocols();
    return 0;
  }
  if (!cli.positional().empty() && cli.positional()[0] == "cache") {
    return run_cache_command(cli);
  }

  verify::JobSpec spec;
  try {
    spec = spec_from_cli(cli);
    spec.validate();
  } catch (const std::invalid_argument& err) {
    std::cerr << err.what() << "\n\n";
    print_protocols();
    return 2;
  }

  if (cli.has("analyze")) {
    const auto instance = verify::instantiate(spec);
    const auto report = proto::analysis::analyze(*instance.program);
    std::cout << proto::analysis::render_human(report);
    return report.ok() ? 0 : 1;
  }

  std::optional<verify::Cache> cache;
  const std::string cache_dir = cli.get_string("cache-dir", "");
  if (!cache_dir.empty() && !cli.has("no-cache")) {
    cache.emplace(cache_dir);
  }

  const verify::JobSpec canonical = spec.canonicalized();
  std::cout << (spec.engine == verify::Engine::kFuzz
                    ? "fuzzing"
                    : spec.engine == verify::Engine::kStress ? "stressing"
                                                             : "exploring")
            << ": protocol=" << canonical.protocol << " kind="
            << model::to_string(spec.kind) << " t="
            << (spec.t == model::kUnbounded ? std::string("inf")
                                            : std::to_string(spec.t))
            << " n=" << spec.processes << " engine="
            << verify::to_string(spec.engine);
  if (spec.engine == verify::Engine::kParallel ||
      spec.engine == verify::Engine::kFrontier) {
    std::cout << '('
              << (spec.threads > 0 ? std::to_string(spec.threads) + " threads"
                                   : std::string("hw threads"))
              << ')';
  }
  std::cout << "\n\n";

  const verify::RunOutcome outcome = verify::run(spec, cache ? &*cache : nullptr);
  if (cache) {
    std::cout << "cache          : "
              << (outcome.cache_hit
                      ? "HIT — report served from " + cache->dir() +
                            ", zero states expanded"
                      : "miss — result stored in " + cache->dir())
              << '\n';
  }

  const std::string json_path = cli.get_string("json", "");
  if (!json_path.empty()) write_json_summary(json_path, spec, outcome);

  switch (spec.engine) {
    case verify::Engine::kFuzz: return report_fuzz(spec, outcome);
    case verify::Engine::kStress: return report_stress(outcome);
    default: return report_explore(spec, outcome);
  }
}
