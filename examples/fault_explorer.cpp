// fault_explorer — interactive front-end to the exhaustive model checker.
//
// Pick a protocol, a fault kind and an (f, t, n) configuration; the tool
// explores EVERY schedule and fault placement and reports either a proof
// of correctness or a concrete violating execution, replayed step by step.
//
// Protocols are resolved through the central ProtocolRegistry (the same
// single-source IR definitions the stress harness runs on real threads),
// so the names printed here match every other front end exactly.
//
//   $ ./fault_explorer --list-protocols
//   $ ./fault_explorer --protocol staged --f 1 --t 1 --n 3 --kind overriding
//   $ ./fault_explorer --protocol herlihy --n 2 --kind silent --t 1
//   $ ./fault_explorer --protocol fp1 --objects 2 --f 1 --n 3
#include <fstream>
#include <iostream>
#include <memory>
#include <numeric>
#include <optional>

#include "proto/analysis/analysis.hpp"
#include "proto/registry.hpp"
#include "sched/explorer.hpp"
#include "sched/frontier_explorer.hpp"
#include "sched/fuzzer.hpp"
#include "sched/parallel_explorer.hpp"
#include "util/cli.hpp"

namespace {

using namespace ff;

model::FaultKind parse_kind(const std::string& name) {
  if (name == "overriding") return model::FaultKind::kOverriding;
  if (name == "silent") return model::FaultKind::kSilent;
  if (name == "invisible") return model::FaultKind::kInvisible;
  if (name == "arbitrary") return model::FaultKind::kArbitrary;
  if (name == "nonresponsive") return model::FaultKind::kNonresponsive;
  if (name == "data") return model::FaultKind::kDataCorruption;
  if (name == "none") return model::FaultKind::kNone;
  throw std::invalid_argument("unknown fault kind: " + name);
}

void print_protocols() {
  std::cout << "registered protocols (canonical name [aliases] — summary):\n";
  for (const auto& info : proto::ProtocolRegistry::instance().all()) {
    std::cout << "  " << info.name;
    for (const auto& alias : info.aliases) std::cout << " | " << alias;
    if (!info.simulable) std::cout << "  [queue client — not simulable]";
    std::cout << "\n      " << info.summary << '\n';
    for (const auto& param : info.params) {
      std::cout << "      param " << param.name << " (default "
                << param.fallback << "): " << param.help << '\n';
    }
  }
}

void print_usage() {
  std::cout <<
      "usage: fault_explorer [options]\n"
      "  --list-protocols  print the protocol registry and exit\n"
      "  --protocol  a registry name or alias, e.g. single-cas | herlihy |\n"
      "              fp1 | staged | retry-silent | announce-cas | tas |\n"
      "              recoverable-cas | recoverable-staged    (default staged)\n"
      "  --kind      overriding | silent | invisible | arbitrary |\n"
      "              nonresponsive | data | none              (default overriding)\n"
      "  --f         faulty-object bound / staged object count (default 1)\n"
      "  --t         faults per object, 0 = unbounded          (default 1)\n"
      "  --n         processes                                 (default 2)\n"
      "  --objects   object count for fp1                      (default f+1)\n"
      "  --state-cap explorer state limit                      (default 4e6)\n"
      "  --engine    dfs | parallel | frontier — search engine (default dfs;\n"
      "              --threads > 0 without --engine implies parallel).\n"
      "              frontier = batched owner-computes BFS wavefront engine\n"
      "              (DESIGN.md §3i; sleep sets do not apply to BFS)\n"
      "  --threads   worker threads for parallel/frontier;\n"
      "              0 = one per hardware thread                (default 0)\n"
      "  --spill-dir frontier only: directory for sorted census spill runs\n"
      "              (witnesses are reconstructed back through the runs)\n"
      "  --mem-limit-mb  frontier only: in-memory watermark in MiB over the\n"
      "              spillable census; exceeded ⇒ spill to --spill-dir\n"
      "              (0 = never spill)                          (default 0)\n"
      "  --no-symmetry    disable process-symmetry reduction (explore one\n"
      "              state per permutation orbit — DESIGN.md §3d);\n"
      "              also disables the fuzzer's canonical novelty signal\n"
      "  --no-sleep-sets  disable sleep-set partial-order reduction\n"
      "              (explorers only; prunes transitions, never states)\n"
      "  --analyze   print the ffcheck analysis report (footprints,\n"
      "              overriding-immunity, loop bounds, recovery proof)\n"
      "              for --protocol and exit; nonzero if violated\n"
      "  --no-immunity-pruning  disable skipping overriding-fault branches\n"
      "              on objects the analyzer proved immune (A2); the\n"
      "              census is identical either way — this flag exists\n"
      "              for differential testing and prune-factor baselines\n"
      "  --crashes   enable process crash-recovery branches (budget 1);\n"
      "              only protocols with a recovery label (recoverable-cas,\n"
      "              recoverable-staged) branch — others are unaffected\n"
      "  --crash-budget  max crashes per process (implies --crashes;\n"
      "              0 = crashes disabled)                     (default 0)\n"
      "  --fuzz      coverage-guided schedule fuzzing instead of\n"
      "              exhaustive exploration (for configurations too large\n"
      "              to enumerate); witnesses are shrunk before printing\n"
      "  --seed      fuzzer seed                                (default 1)\n"
      "  --fuzz-steps  fuzzing budget in simulated steps, 0 = unlimited\n"
      "                                                    (default 2e6)\n"
      "  --fuzz-millis wall-clock budget in ms, 0 = none       (default 0)\n"
      "  --fuzz-execs  stop after this many executions, 0 = none\n"
      "  --json      write the full fuzz result (stats, corpus, coverage,\n"
      "              RNG state) as JSON to this path\n";
}

/// Replays a witness step by step, printing each operation and the
/// resulting object value (shared by the explorer and fuzzer verdicts).
void print_witness_replay(const sched::SimWorld& world,
                          const sched::Violation& violation) {
  sched::SimWorld replayed = world;
  std::size_t step = 0;
  for (const auto& choice : violation.schedule) {
    if (choice.pid == sched::kAdversaryPid) {
      std::cout << "  " << ++step << ". adversary corrupts memory";
      replayed.apply(choice);
      std::cout << '\n';
      continue;
    }
    const auto op = replayed.pending(choice.pid);
    std::cout << "  " << ++step << ". p" << choice.pid;
    if (choice.crash) {
      // Crash branch: variant 1 = the op's effect lands, the response is
      // lost; variant 0 = the op never reaches shared memory.
      std::cout << " [CRASH " << (choice.fault_variant == 1 ? "after" : "before")
                << " op]";
    } else if (choice.fault) {
      std::cout << " [FAULT]";
    }
    switch (op.type) {
      case sched::OpType::kCas:
        std::cout << " CAS(O" << op.object << ", " << op.expected.to_string()
                  << ", " << op.desired.to_string() << ")";
        break;
      case sched::OpType::kRegRead:
        std::cout << " read R" << op.object;
        break;
      case sched::OpType::kRegWrite:
        std::cout << " R" << op.object << " <- " << op.desired.to_string();
        break;
      case sched::OpType::kNone:
        break;
    }
    replayed.apply(choice);
    if (op.type == sched::OpType::kCas) {
      std::cout << " -> O" << op.object << " = "
                << replayed.object_value(op.object).to_string();
    } else if (op.type == sched::OpType::kRegWrite) {
      std::cout << " -> R" << op.object << " = "
                << replayed.register_value(op.object).to_string();
    }
    if (choice.crash) {
      std::cout << "; p" << choice.pid << " restarts at recover ("
                << replayed.crashes_used(choice.pid) << " crash"
                << (replayed.crashes_used(choice.pid) == 1 ? "" : "es")
                << " used)";
    }
    std::cout << '\n';
  }
  std::cout << "final decisions:\n";
  const auto decisions = replayed.decisions();
  for (std::uint32_t pid = 0; pid < decisions.size(); ++pid) {
    std::cout << "  p" << pid << " -> "
              << (decisions[pid] ? std::to_string(*decisions[pid])
                                 : std::string("(undecided)"))
              << '\n';
  }
}

int run_fuzz(const sched::SimWorld& world, const util::Cli& cli,
             model::FaultKind kind) {
  sched::FuzzOptions options;
  options.seed = cli.get_uint("seed", 1);
  options.budget.max_units = cli.get_uint("fuzz-steps", 2'000'000);
  options.budget.max_millis = cli.get_uint("fuzz-millis", 0);
  options.max_execs = cli.get_uint("fuzz-execs", 0);
  options.killed_is_violation = kind == model::FaultKind::kNonresponsive;
  options.symmetry_reduction = !cli.has("no-symmetry");

  const sched::FuzzResult result = sched::fuzz(world, options);

  std::cout << "executions     : " << result.stats.executions << '\n'
            << "steps          : " << result.stats.total_steps << '\n'
            << "unique states  : " << result.stats.unique_states << '\n'
            << "corpus         : " << result.stats.corpus_entries
            << " schedules\n"
            << "coverage       : "
            << (result.complete ? "requested work finished"
                                : "budget exhausted or stopped early")
            << '\n';

  const std::string json_path = cli.get_string("json", "");
  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << result.to_json() << '\n';
    std::cout << "json           : " << json_path << '\n';
  }

  if (!result.violation) {
    std::cout << "verdict        : no violation found (sampling — NOT a "
                 "proof of correctness)\n";
    return 0;
  }

  std::cout << "verdict        : VIOLATION ("
            << sched::to_string(result.violation->kind) << ")\n"
            << "detail         : " << result.violation->detail << '\n'
            << "found at exec  : "
            << result.stats.first_violation_exec.value_or(0) << '\n'
            << "witness        : " << result.violation->schedule_string()
            << "\n  (shrunk from " << result.stats.witness_steps_found
            << " to " << result.stats.witness_steps_shrunk
            << " steps)\n\nreplaying witness:\n";
  print_witness_replay(world, *result.violation);
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  if (cli.has("help")) {
    print_usage();
    return 0;
  }

  if (cli.has("list-protocols")) {
    print_protocols();
    return 0;
  }

  const std::string proto_name = cli.get_string("protocol", "staged");
  const auto f = static_cast<std::uint32_t>(cli.get_uint("f", 1));
  const auto t_raw = static_cast<std::uint32_t>(cli.get_uint("t", 1));
  const std::uint32_t t = t_raw == 0 ? model::kUnbounded : t_raw;
  const auto n = static_cast<std::uint32_t>(cli.get_uint("n", 2));
  const model::FaultKind kind =
      parse_kind(cli.get_string("kind", "overriding"));

  const proto::ProtocolInfo* info =
      proto::ProtocolRegistry::instance().find(proto_name);
  if (info == nullptr || !info->simulable) {
    std::cerr << (info == nullptr
                      ? "unknown protocol: "
                      : "protocol is a queue client, not simulable: ")
              << proto_name << "\n\n";
    print_protocols();
    return 2;
  }
  // Map the explorer's CLI vocabulary onto the registry's parameter
  // schema; anything not set falls back to the schema defaults.
  proto::Params params;
  params.set("f", f).set("n", n);
  params.set("t", t == model::kUnbounded ? 1 : t);
  params.set("k", cli.get_uint("objects", f + 1));

  if (cli.has("analyze")) {
    const auto program = proto::build_program(info->name, params);
    const auto report = proto::analysis::analyze(*program);
    std::cout << proto::analysis::render_human(report);
    return report.ok() ? 0 : 1;
  }

  const std::unique_ptr<sched::MachineFactory> factory =
      proto::machine_factory(info->name, params);

  sched::SimConfig config;
  config.num_objects = factory->objects_used();
  config.num_registers = factory->registers_used();
  config.kind = kind;
  config.t = t;
  config.allow_corruption_steps = kind == model::FaultKind::kDataCorruption;
  config.crash_budget = static_cast<std::uint32_t>(
      cli.get_uint("crash-budget", cli.has("crashes") ? 1 : 0));
  config.use_immunity_pruning = !cli.has("no-immunity-pruning");
  std::vector<std::uint64_t> inputs(n);
  std::iota(inputs.begin(), inputs.end(), 1);
  const sched::SimWorld world(config, *factory, inputs);

  if (cli.has("fuzz")) {
    std::cout << "fuzzing: protocol=" << factory->name()
              << " objects=" << config.num_objects << " kind="
              << model::to_string(kind) << " t="
              << (t == model::kUnbounded ? std::string("inf")
                                         : std::to_string(t))
              << " n=" << n << " seed=" << cli.get_uint("seed", 1)
              << "\n\n";
    return run_fuzz(world, cli, kind);
  }

  sched::ExploreOptions options;
  options.max_states = cli.get_uint("state-cap", 4'000'000);
  options.killed_is_violation = kind == model::FaultKind::kNonresponsive;
  options.symmetry_reduction = !cli.has("no-symmetry");
  options.sleep_sets = !cli.has("no-sleep-sets");

  const auto threads =
      static_cast<std::uint32_t>(cli.get_uint("threads", 0));
  // --threads > 0 without an explicit --engine keeps its historical
  // meaning: the work-stealing parallel DFS.
  const std::string engine =
      cli.get_string("engine", threads > 0 ? "parallel" : "dfs");
  if (engine != "dfs" && engine != "parallel" && engine != "frontier") {
    std::cerr << "unknown engine: " << engine
              << " (expected dfs | parallel | frontier)\n";
    return 2;
  }

  std::cout << "exploring: protocol=" << factory->name()
            << " objects=" << config.num_objects << " kind="
            << model::to_string(kind) << " t="
            << (t == model::kUnbounded ? std::string("inf")
                                       : std::to_string(t))
            << " n=" << n << " explorer="
            << (engine == "dfs"
                    ? std::string("sequential")
                    : engine + "(" +
                          (threads > 0 ? std::to_string(threads) + " threads"
                                       : std::string("hw threads")) +
                          ")")
            << "\n\n";
  sched::ExploreResult result;
  std::optional<sched::FrontierStats> frontier_stats;
  if (engine == "parallel") {
    sched::ParallelExploreOptions parallel_options;
    parallel_options.explore = options;
    parallel_options.num_threads = threads;
    result = sched::parallel_explore(world, parallel_options);
  } else if (engine == "frontier") {
    sched::FrontierExploreOptions frontier_options;
    frontier_options.explore = options;
    frontier_options.num_threads = threads;
    frontier_options.spill_dir = cli.get_string("spill-dir", "");
    frontier_options.mem_limit_bytes =
        cli.get_uint("mem-limit-mb", 0) * (std::uint64_t{1} << 20);
    auto fr = sched::frontier_explore(config, *factory, inputs,
                                      frontier_options);
    result = std::move(fr.explore);
    frontier_stats = fr.stats;
  } else {
    result = sched::explore(world, options);
  }

  std::cout << "states visited : " << result.states_visited << '\n'
            << "terminal states: " << result.terminal_states << '\n'
            << "max depth      : " << result.max_depth << '\n'
            << "peak memory    : " << (result.peak_bytes >> 10) << " KiB\n"
            << "coverage       : "
            << (result.complete ? "COMPLETE (exhaustive proof)"
                                : "partial (cap hit or stopped early)")
            << '\n';
  if (frontier_stats) {
    std::cout << "frontier       : waves=" << frontier_stats->waves
              << " forwarded=" << frontier_stats->forwarded
              << " batch_sweeps=" << frontier_stats->batch_sweeps
              << " memo_hits=" << frontier_stats->memo_hits
              << " lanes=" << frontier_stats->arena_lanes << '\n';
    if (frontier_stats->spill_runs > 0) {
      std::cout << "spill          : runs=" << frontier_stats->spill_runs
                << " records=" << frontier_stats->spilled_records
                << " bytes=" << frontier_stats->spill_bytes << '\n';
    }
  }
  if (result.immunity_skips > 0) {
    std::cout << "A2 pruning     : " << result.immunity_skips
              << " overriding branches skipped via proved-immune objects ("
              << result.immunity_checks << " checked dynamically)\n";
  }

  if (!result.violation) {
    std::cout << "verdict        : no violation — consensus holds for every "
                 "schedule and fault placement explored\n";
    std::cout << "agreed values  : {";
    bool first = true;
    for (const auto v : result.agreed_values) {
      std::cout << (first ? "" : ", ") << v;
      first = false;
    }
    std::cout << "}\n";
    if (result.complete) {
      const auto bound = sched::longest_execution(world, options);
      if (bound.complete) {
        std::cout << "wait-free bound: " << bound.max_total_steps
                  << " total steps in the worst schedule\n";
      }
    }
    return 0;
  }

  std::cout << "verdict        : VIOLATION ("
            << sched::to_string(result.violation->kind) << ")\n"
            << "detail         : " << result.violation->detail << '\n'
            << "witness        : " << result.violation->schedule_string()
            << "\n\nreplaying witness:\n";
  print_witness_replay(world, *result.violation);
  return 1;
}
