// leader_election — epoch-based leader election on faulty hardware.
//
// Every epoch, all workers propose themselves as leader through a
// consensus instance built from f CAS objects that may ALL suffer up to
// t overriding faults each (the staged protocol of Figure 3 — note: no
// correct object exists anywhere in the system!).  The elected leader
// performs the epoch's work; every worker must observe the same leader
// in every epoch.
//
//   $ ./leader_election [--workers 3] [--epochs 50] [--t 2]
//
// The worker count is capped at f+1 = workers, i.e. we run with f =
// workers-1 objects, the exact boundary Theorem 6 proves tight.
#include <cstdio>
#include <iostream>
#include <memory>
#include <thread>
#include <vector>

#include "faults/budget.hpp"
#include "faults/faulty_cas.hpp"
#include "faults/policy.hpp"
#include "proto/registry.hpp"
#include "util/cli.hpp"
#include "util/spin_barrier.hpp"

int main(int argc, char** argv) {
  const ff::util::Cli cli(argc, argv);
  const auto workers = static_cast<std::uint32_t>(cli.get_uint("workers", 3));
  const auto epochs = static_cast<std::uint32_t>(cli.get_uint("epochs", 50));
  const auto t = static_cast<std::uint32_t>(cli.get_uint("t", 2));
  const std::uint32_t f = workers - 1;

  std::cout << "leader_election: " << workers << " workers, " << epochs
            << " epochs, staged consensus over f=" << f
            << " all-faulty CAS objects (t=" << t << " overriding faults "
            << "each, maxStage=" << ff::model::staged_max_stage(f, t)
            << ")\n";

  ff::faults::AlwaysFault policy;  // worst structured adversary
  ff::faults::FaultBudget budget(f, f, t);
  std::vector<std::unique_ptr<ff::faults::FaultyCas>> bank;
  std::vector<ff::objects::CasObject*> raw;
  for (std::uint32_t i = 0; i < f; ++i) {
    bank.push_back(std::make_unique<ff::faults::FaultyCas>(
        i, ff::model::FaultKind::kOverriding, &policy, &budget));
    raw.push_back(bank.back().get());
  }
  const auto election_ptr = ff::proto::protocol(
      "staged", ff::proto::Params{{"f", f}, {"t", t}}, raw);
  ff::consensus::Protocol& election = *election_ptr;
  election.set_step_limit(10'000'000);

  // elected[epoch][worker] = leader this worker observed.
  std::vector<std::vector<std::uint64_t>> elected(
      epochs, std::vector<std::uint64_t>(workers));
  std::vector<std::uint64_t> terms(workers, 0);
  ff::util::SpinBarrier barrier(workers);

  std::vector<std::thread> threads;
  for (std::uint32_t w = 0; w < workers; ++w) {
    threads.emplace_back([&, w] {
      for (std::uint32_t epoch = 0; epoch < epochs; ++epoch) {
        barrier.arrive_and_wait();
        if (w == 0) {  // one worker resets the shared instance per epoch
          election.reset();
          budget.reset();
        }
        barrier.arrive_and_wait();
        // Propose myself (+1: inputs must be non-zero-distinct per epoch).
        const auto decision = election.decide(w + 1, w);
        elected[epoch][w] = decision.decided ? decision.value : 0;
      }
    });
  }
  for (auto& t_ : threads) t_.join();

  // Verify: one leader per epoch, observed identically by everyone.
  std::uint32_t disagreements = 0;
  for (std::uint32_t epoch = 0; epoch < epochs; ++epoch) {
    const std::uint64_t leader = elected[epoch][0];
    bool agree = leader != 0;
    for (std::uint32_t w = 1; w < workers; ++w) {
      agree = agree && elected[epoch][w] == leader;
    }
    if (!agree) {
      ++disagreements;
    } else {
      ++terms[static_cast<std::uint32_t>(leader - 1)];
    }
  }

  std::cout << "epochs with split brain : " << disagreements << " (must be 0)\n";
  for (std::uint32_t w = 0; w < workers; ++w) {
    std::printf("worker %u led %lu/%u epochs\n", w,
                static_cast<unsigned long>(terms[w]), epochs);
  }
  return disagreements == 0 ? 0 : 1;
}
