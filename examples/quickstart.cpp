// Quickstart: build a bank of possibly-faulty CAS objects, run the
// paper's f-tolerant consensus protocol (Figure 2) across real threads,
// and verify the outcome.
//
//   $ ./quickstart [--f 2] [--n 4] [--trials 100] [--fault-rate 0.5]
#include <iostream>
#include <memory>
#include <vector>

#include "faults/budget.hpp"
#include "faults/faulty_cas.hpp"
#include "faults/policy.hpp"
#include "proto/registry.hpp"
#include "runtime/stress.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  const ff::util::Cli cli(argc, argv);
  const auto f = static_cast<std::uint32_t>(cli.get_uint("f", 2));
  const auto n = static_cast<std::uint32_t>(cli.get_uint("n", 4));
  const auto trials = cli.get_uint("trials", 100);
  const double fault_rate = cli.get_double("fault-rate", 0.5);

  std::cout << "Consensus from faulty CAS objects (Sheffi & Petrank 2020)\n"
            << "f = " << f << " faulty objects (unbounded overriding "
            << "faults), " << f + 1 << " objects total, n = " << n
            << " processes\n\n";

  // f+1 CAS objects; up to f of them may fault, each attempting a fault
  // on ~fault_rate of its invocations.
  ff::faults::FaultBudget budget(f + 1, /*f=*/f, ff::model::kUnbounded);
  ff::faults::ProbabilisticFault policy(fault_rate, /*seed=*/42);

  std::vector<std::unique_ptr<ff::faults::FaultyCas>> bank;
  std::vector<ff::objects::CasObject*> raw;
  for (std::uint32_t i = 0; i <= f; ++i) {
    bank.push_back(std::make_unique<ff::faults::FaultyCas>(
        i, ff::model::FaultKind::kOverriding, &policy, &budget));
    raw.push_back(bank.back().get());
  }

  const auto protocol_ptr = ff::proto::protocol(
      "f-plus-one", ff::proto::Params{{"k", f + 1}}, raw);
  ff::consensus::Protocol& protocol = *protocol_ptr;

  ff::runtime::StressOptions options;
  options.processes = n;
  options.budget.max_units = trials;
  options.seed = 0x5eed;
  const auto report = ff::runtime::run_stress(
      protocol, options,
      [&](std::uint64_t) { budget.reset(); });

  std::cout << "trials               : " << report.trials << '\n'
            << "all-correct          : " << (report.all_ok() ? "yes" : "NO")
            << '\n'
            << "agreement rate       : " << report.ok_rate() << '\n'
            << "mean CAS steps/proc  : " << report.steps_per_process.mean()
            << " (theory: exactly " << f + 1 << ")\n";
  return report.all_ok() ? 0 : 1;
}
