// hierarchy_demo — walks the Herlihy consensus hierarchy levels realized
// by faulty CAS ensembles (Section 5.2).
//
// For each f it probes process counts until the first violation and
// prints the resulting consensus number, with the kind of evidence
// backing each cell (exhaustive proof / stress / counterexample).
//
//   $ ./hierarchy_demo [--max-f 3] [--t 1]
#include <iostream>

#include "hierarchy/consensus_number.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  const ff::util::Cli cli(argc, argv);
  const auto max_f = static_cast<std::uint32_t>(cli.get_uint("max-f", 3));
  const auto t = static_cast<std::uint32_t>(cli.get_uint("t", 1));

  std::cout << "The consensus hierarchy, populated by faulty CAS "
               "ensembles\n"
            << "(f overriding-faulty CAS objects, at most " << t
            << " fault(s) each):\n\n";

  ff::hierarchy::ProbeOptions options;
  options.explorer_max_states = cli.get_uint("state-cap", 1'000'000);
  options.walks = 150;

  for (std::uint32_t f = 1; f <= max_f; ++f) {
    const auto estimate =
        ff::hierarchy::estimate_staged_consensus_number(f, t, f + 3,
                                                        options);
    std::cout << "f = " << f << "  ->  consensus number "
              << estimate.consensus_number << " (theory: " << f + 1
              << ")\n";
    for (const auto& cell : estimate.cells) {
      std::cout << "    n = " << cell.n << ": "
                << ff::hierarchy::to_string(cell.evidence) << " ["
                << cell.method << ", effort " << cell.effort << "]";
      if (!cell.detail.empty()) std::cout << " — " << cell.detail;
      std::cout << '\n';
    }
    std::cout << '\n';
  }
  std::cout << "A correct CAS object sits at level infinity; one overriding "
               "fault per object drags an\nf-object ensemble down to level "
               "f+1 — every hierarchy level is realized by some fault "
               "budget.\n";
  return 0;
}
