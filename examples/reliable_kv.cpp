// reliable_kv — a replicated key-value store built on faulty-CAS
// consensus (the "universal construction" use of consensus the paper's
// introduction motivates).
//
// N worker threads share a replicated log.  For every log slot each
// worker proposes its own PUT operation; a consensus instance built from
// f+1 CAS objects (up to f with unbounded overriding faults — Figure 2)
// decides which proposal wins the slot.  Every worker applies the decided
// operations, in slot order, to its private replica.  Because consensus
// is fault-tolerant, all replicas end up identical even though the
// hardware misbehaves.
//
//   $ ./reliable_kv [--workers 4] [--slots 200] [--f 2] [--fault-rate 0.6]
#include <cstdio>
#include <iostream>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "consensus/consensus.hpp"
#include "faults/budget.hpp"
#include "faults/faulty_cas.hpp"
#include "faults/policy.hpp"
#include "proto/registry.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/spin_barrier.hpp"

namespace {

using ff::consensus::InputValue;

/// A PUT operation packed into a consensus input value:
/// [worker:8 | key:8 | value:16].
struct PutOp {
  std::uint8_t worker;
  std::uint8_t key;
  std::uint16_t value;

  [[nodiscard]] InputValue pack() const {
    return (static_cast<InputValue>(worker) << 24) |
           (static_cast<InputValue>(key) << 16) | value;
  }
  static PutOp unpack(InputValue v) {
    return PutOp{static_cast<std::uint8_t>(v >> 24),
                 static_cast<std::uint8_t>(v >> 16),
                 static_cast<std::uint16_t>(v)};
  }
};

}  // namespace

int main(int argc, char** argv) {
  const ff::util::Cli cli(argc, argv);
  const auto workers = static_cast<std::uint32_t>(cli.get_uint("workers", 4));
  const auto slots = static_cast<std::uint32_t>(cli.get_uint("slots", 200));
  const auto f = static_cast<std::uint32_t>(cli.get_uint("f", 2));
  const double fault_rate = cli.get_double("fault-rate", 0.6);

  std::cout << "reliable_kv: " << workers << " workers, " << slots
            << " log slots, consensus per slot from " << f + 1
            << " CAS objects (" << f << " may fault, rate " << fault_rate
            << ")\n";

  // One consensus instance per log slot, each over its own object bank.
  ff::faults::ProbabilisticFault policy(fault_rate, 0xCAFE);
  std::vector<std::unique_ptr<ff::faults::FaultBudget>> budgets;
  std::vector<std::unique_ptr<ff::faults::FaultyCas>> objects;
  std::vector<std::unique_ptr<ff::consensus::Protocol>> log;
  for (std::uint32_t slot = 0; slot < slots; ++slot) {
    budgets.push_back(std::make_unique<ff::faults::FaultBudget>(
        f + 1, f, ff::model::kUnbounded));
    std::vector<ff::objects::CasObject*> raw;
    for (std::uint32_t i = 0; i <= f; ++i) {
      // Object ids are bank-local: each slot's budget tracks its own
      // objects 0..f.
      objects.push_back(std::make_unique<ff::faults::FaultyCas>(
          i, ff::model::FaultKind::kOverriding, &policy,
          budgets.back().get()));
      raw.push_back(objects.back().get());
    }
    log.push_back(ff::proto::protocol(
        "f-plus-one", ff::proto::Params{{"k", f + 1}}, raw));
  }

  // Each worker proposes ops and applies the winners.
  std::vector<std::map<std::uint8_t, std::uint16_t>> replicas(workers);
  std::vector<std::uint64_t> wins(workers, 0);
  ff::util::SpinBarrier barrier(workers);
  std::vector<std::thread> threads;
  for (std::uint32_t w = 0; w < workers; ++w) {
    threads.emplace_back([&, w] {
      ff::util::Xoshiro256 rng(0xBEEF + w);
      for (std::uint32_t slot = 0; slot < slots; ++slot) {
        // Rendezvous per slot so every slot is genuinely contended
        // (without it one worker sprints ahead and wins everything).
        barrier.arrive_and_wait();
        const PutOp proposal{static_cast<std::uint8_t>(w),
                             static_cast<std::uint8_t>(rng.below(16)),
                             static_cast<std::uint16_t>(rng.below(1000))};
        const auto decision = log[slot]->decide(proposal.pack(), w);
        const PutOp winner = PutOp::unpack(decision.value);
        replicas[w][winner.key] = winner.value;
        if (winner.worker == w) ++wins[w];
      }
    });
  }
  for (auto& t : threads) t.join();

  // All replicas must be identical.
  bool identical = true;
  for (std::uint32_t w = 1; w < workers; ++w) {
    identical = identical && replicas[w] == replicas[0];
  }

  std::cout << "replica consistency  : " << (identical ? "IDENTICAL" : "DIVERGED")
            << '\n'
            << "keys in store        : " << replicas[0].size() << '\n';
  for (std::uint32_t w = 0; w < workers; ++w) {
    std::printf("worker %u won %lu/%u slots\n", w,
                static_cast<unsigned long>(wins[w]), slots);
  }
  std::cout << "final store (first 8 keys):\n";
  int shown = 0;
  for (const auto& [key, value] : replicas[0]) {
    if (shown++ == 8) break;
    std::printf("  k%-3u = %u\n", key, value);
  }
  return identical ? 0 : 1;
}
